"""Tests for communication-aware multigrid: block smoothers through the
``solve()`` front door, per-level message accounting, and AMG
sparsification (DESIGN.md §5.16)."""

import json

import numpy as np
import pytest

from repro.api import MultigridConfig, RunConfig, solve
from repro.matrices.poisson import poisson_2d
from repro.multigrid import (
    GaussSeidelSmoother,
    MultigridExecutor,
    MultigridSolver,
    make_smoother,
    sparsify,
    vcycle_experiment_run,
)
from repro.trace import RunTracer


def scaled_laplacian(dim):
    h = 1.0 / (dim + 1)
    return poisson_2d(dim).scale(1.0 / h ** 2)


def fig6_rhs(dim, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, dim * dim)


def run_block(dim, n_parts, *, method="ds", n_cycles=9, tracer=None,
              cache_dir=None, hierarchy="geometric", drop_tol=0.0,
              budget=1.0, seed=0):
    sm = make_smoother(method, budget=budget, n_parts=n_parts, seed=seed,
                       tracer=tracer, cache_dir=cache_dir)
    mg = MultigridExecutor(scaled_laplacian(dim), sm, tracer=tracer,
                           hierarchy=hierarchy, drop_tol=drop_tol)
    hist = mg.run(fig6_rhs(dim, seed), n_cycles=n_cycles)
    return mg, hist


# ---------------------------------------------------------------- Figure 6
@pytest.mark.parametrize("n_parts", [4, 16])
def test_block_ds_grid_independent_convergence(n_parts):
    """Figure 6 with the *block* machinery: 9 V-cycles of block-DS
    smoothing converge grid-independently at P=4 and P=16."""
    rels = []
    for dim in (15, 31):
        _, hist = run_block(dim, n_parts)
        rels.append(hist.final_norm / hist.initial_norm)
    assert all(r < 1e-6 for r in rels)          # converged, deeply
    # grid independence: doubling the grid does not degrade the contraction
    assert rels[1] < 10 * rels[0] + 1e-8


def test_scalar_smoothed_executor_bit_identical_to_deprecated_solver():
    """The executor's V-cycle arithmetic is the deprecated solver's."""
    dim = 15
    b = fig6_rhs(dim)
    sm = GaussSeidelSmoother(1)
    mg = MultigridExecutor(scaled_laplacian(dim), sm)
    new = mg.run(b, n_cycles=5)
    with pytest.warns(DeprecationWarning):
        old_solver = MultigridSolver(dim, GaussSeidelSmoother(1),
                                     GaussSeidelSmoother(1))
    old = old_solver.solve(b, n_cycles=5)
    assert new.residual_norms == old.residual_norms
    assert np.array_equal(mg.x, old_solver.x)


def test_deprecated_entry_points_warn_once_each():
    with pytest.warns(DeprecationWarning, match="MultigridSolver"):
        MultigridSolver(7, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    with pytest.warns(DeprecationWarning, match="vcycle_experiment_run"):
        vcycle_experiment_run(7, lambda: GaussSeidelSmoother(1),
                              n_cycles=1)


# ------------------------------------------------- equal relaxation budget
def test_block_budget_spent_to_within_one_block():
    """Each level spends its cumulative relaxation budget exactly, up to
    an unspendable carry smaller than one block (the shortfall persists
    only when no winning block fits the remainder)."""
    mg, _ = run_block(15, 4, n_cycles=9)
    smoothed = mg.levels[:-1]
    assert smoothed                              # coarsest is exact-solved
    for lvl in smoothed:
        rec = mg.smoother.record_for(lvl.matrix)
        issued = 2 * 9 * mg.smoother.relaxations(lvl.n_unknowns)
        assert rec.relaxations + rec.carry == issued
        assert rec.carry <= int(rec.sizes.max())


# ------------------------------------------------- per-level accounting
def test_level_stats_sum_to_run_totals_by_equality(tmp_path):
    tr = RunTracer()
    mg, _ = run_block(15, 4, tracer=tr)
    rows = mg.level_stats()
    agg = mg.aggregate_stats()
    assert sum(r.msgs for r in rows) == agg.total_messages
    assert sum(r.bytes for r in rows) == agg.total_bytes
    assert sum(r.recvs for r in rows) == agg.total_receives
    assert agg.total_messages > 0                # DS actually communicated

    path = tmp_path / "mg.jsonl"
    tr.save_jsonl(path)
    from repro.analysis.traceagg import summarize_trace

    summary = summarize_trace(path)
    assert summary.level_stats                   # mg_level rows recorded
    assert summary.levels_reconcile()
    assert summary.reconciles()


def test_unsmoothed_coarsest_level_row_is_zero():
    mg, _ = run_block(15, 4)
    rows = mg.level_stats()
    assert rows[-1].n_parts == 0                 # exact solve, no smoothing
    assert rows[-1].msgs == 0 and rows[-1].relaxations == 0
    assert all(r.relaxations > 0 for r in rows[:-1])


def test_warm_setup_cache_hits_every_level(tmp_path):
    run_block(15, 4, cache_dir=tmp_path)         # cold: populate the cache
    tr = RunTracer()
    mg, _ = run_block(15, 4, tracer=tr, cache_dir=tmp_path, n_cycles=1)
    cache_events = [ev for ev in tr.iter_events()
                    if ev.get("ev") == "setup_cache"]
    n_smoothed = len(mg.levels) - 1
    assert len(cache_events) == n_smoothed
    assert all(ev["hit"] for ev in cache_events)


# ------------------------------------------------------- AMG sparsification
def test_sparsify_zero_tol_is_identity():
    A = scaled_laplacian(7)
    out, dropped = sparsify(A, 0.0)
    assert out is A and dropped == 0


def test_sparsify_negative_tol_raises():
    with pytest.raises(ValueError):
        sparsify(scaled_laplacian(7), -0.1)


def test_sparsify_drops_weak_couplings_symmetrically():
    from repro.multigrid.transfer import (
        prolongation_matrix,
        restriction_matrix,
    )

    A = scaled_laplacian(15)
    A_c = (restriction_matrix(15).matmat(A)
           .matmat(prolongation_matrix(7)).prune(1e-14))
    out, dropped = sparsify(A_c, 0.1)            # prunes the 9-pt corners
    assert dropped > 0
    assert out.nnz == A_c.nnz - dropped
    d = out.to_dense()
    assert np.array_equal(d != 0.0, (d != 0.0).T)   # structurally symmetric
    assert np.array_equal(np.diag(d), np.diag(A_c.to_dense()))


def test_sparsified_hierarchy_converges_within_bound():
    """Dropping weak Galerkin couplings dampens the coarse correction:
    fewer messages per cycle, slower convergence — but still convergent."""
    _, dense_hist = run_block(15, 4, hierarchy="galerkin", drop_tol=0.0)
    mg, sp_hist = run_block(15, 4, hierarchy="galerkin", drop_tol=0.1)
    dense_rel = dense_hist.final_norm / dense_hist.initial_norm
    sp_rel = sp_hist.final_norm / sp_hist.initial_norm
    assert sum(r.nnz_dropped for r in mg.level_stats()) > 0
    assert dense_rel < 1e-6                      # exact Galerkin: deep
    assert sp_rel < 5e-2                         # sparsified: bounded
    assert sp_rel >= dense_rel                   # never better than exact


# ------------------------------------------------------- solve() front door
def test_solve_mg_block_ds_end_to_end():
    dim = 15
    res = solve(scaled_laplacian(dim), fig6_rhs(dim), method="mg",
                x0=np.zeros(dim * dim),
                config=RunConfig(n_parts=4, seed=0))
    assert res.method == "mg-block-ds"
    assert res.cycles == 9 and res.parallel_steps == 9
    assert res.final_norm / res.history.initial_norm < 1e-6
    assert res.levels is not None
    assert sum(r.msgs for r in res.levels) > 0
    assert res.comm_cost > 0


def test_solve_mg_default_rhs_is_fig6_protocol():
    """b=None draws the Figure 6 seeded uniform RHS; x0=None is zeros."""
    dim = 15
    cfg = RunConfig(n_parts=4, seed=3)
    auto = solve(scaled_laplacian(dim), method="mg", config=cfg)
    manual = solve(scaled_laplacian(dim), fig6_rhs(dim, 3), method="mg",
                   x0=np.zeros(dim * dim), config=cfg)
    assert auto.final_norm == manual.final_norm


def test_solve_mg_result_schema_v5_roundtrip():
    dim = 15
    res = solve(scaled_laplacian(dim), method="mg",
                config=RunConfig(n_parts=4,
                                 mg=MultigridConfig(smoother="gs")))
    doc = res.to_dict()
    assert doc["schema"] == "repro.solveresult/v5"
    assert doc["cycles"] == 9
    assert isinstance(doc["levels"], list) and doc["levels"]
    assert doc["levels"][0]["level"] == 0
    assert {"n", "n_parts", "msgs", "bytes", "recvs", "relaxations",
            "nnz_dropped"} <= set(doc["levels"][0])
    json.dumps(doc)                              # JSON-serializable


def test_solve_mg_scalar_result_has_level_rows_without_messages():
    dim = 15
    res = solve(scaled_laplacian(dim), method="mg",
                config=RunConfig(mg=MultigridConfig(smoother="scalar-ds")))
    assert res.method == "mg-distributed-southwell"
    assert all(r.msgs == 0 for r in res.levels)
    assert sum(r.relaxations for r in res.levels) == res.relaxations
    assert res.relaxations > 0


def test_solve_mg_block_requires_n_parts():
    with pytest.raises(ValueError, match="n_parts"):
        solve(scaled_laplacian(7), method="mg")


def test_solve_mg_rejects_non_grid_operator(fem_300):
    with pytest.raises(ValueError, match="2\\^k"):
        solve(fem_300, method="mg", config=RunConfig(n_parts=4))


def test_solve_mg_drop_tol_implies_galerkin():
    dim = 15
    res = solve(scaled_laplacian(dim), method="mg",
                config=RunConfig(n_parts=4,
                                 mg=MultigridConfig(drop_tol=0.1)))
    assert sum(r.nnz_dropped for r in res.levels) > 0


def test_multigrid_config_validation():
    with pytest.raises(ValueError):
        MultigridConfig(smoother="sor")
    with pytest.raises(ValueError):
        MultigridConfig(budget=0.0)
    with pytest.raises(ValueError):
        MultigridConfig(drop_tol=-1.0)
    with pytest.raises(ValueError):
        MultigridConfig(cycles=0)
    with pytest.raises(ValueError):
        MultigridConfig(levels=1)
    with pytest.raises(ValueError):
        MultigridConfig(hierarchy="algebraic")
    with pytest.raises(ValueError):
        MultigridConfig(coarsest_dim=1)


def test_solve_mg_trace_reconciles_end_to_end(tmp_path):
    dim = 15
    path = tmp_path / "solve_mg.jsonl"
    solve(scaled_laplacian(dim), method="mg",
          config=RunConfig(n_parts=4, trace=str(path)))
    from repro.analysis.traceagg import format_trace_summary, summarize_trace

    summary = summarize_trace(path)
    assert summary.reconciles() and summary.levels_reconcile()
    text = format_trace_summary(summary)
    assert "levels (finest first):" in text
    assert "level sums match footer: yes" in text
