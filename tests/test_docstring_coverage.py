"""Meta-test: every public item in the library carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes that a regression guarantee rather than a one-time audit.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro", "repro.analysis", "repro.core", "repro.experiments",
    "repro.matrices", "repro.multigrid", "repro.partition",
    "repro.runtime", "repro.solvers", "repro.sparsela",
]


def _iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__,
                                         prefix=pkg_name + "."):
            yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_callable_and_class_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue        # re-export; documented at its home
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing = []
    for module in _iter_modules():
        for cname, cls in vars(module).items():
            if cname.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for mname, meth in vars(cls).items():
                if mname.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if not inspect.getdoc(meth):
                    missing.append(f"{module.__name__}."
                                   f"{cname}.{mname}")
    assert not missing, f"undocumented public methods: {missing}"
