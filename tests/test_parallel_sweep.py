"""Tests for the process-pool sweep runner and its on-disk cache.

The sweep runner must be a pure optimisation: identical results to the
serial ``run_method`` path, whether they come from the pool, the inline
fallback, or the cache.  Pool creation is environment-dependent
(sandboxes commonly forbid the required semaphores), so the tests that
exercise parallel dispatch tolerate the documented inline degradation —
the *results* contract is unconditional.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.parallel import (
    SweepTask,
    code_digest,
    default_cache_dir,
    run_sweep,
    task_key,
)
from repro.experiments.runners import METHODS, run_method, suite_runs

#: smallest suite problem configuration that still has real couplings
_PROB = dict(problem="af_5_k101", n_procs=6, size_scale=0.03,
             max_steps=8, seed=0)


def _task(method, **over):
    cfg = {**_PROB, **over}
    return SweepTask(cfg["problem"], method, cfg["n_procs"],
                     cfg["size_scale"], cfg["max_steps"], cfg["seed"])


def _assert_same_result(a, b):
    assert np.array_equal(np.asarray(a.history.residual_norms),
                          np.asarray(b.history.residual_norms))
    assert a.comm_cost == b.comm_cost
    assert a.solve_comm == b.solve_comm
    assert a.residual_comm == b.residual_comm
    assert a.relaxations == b.relaxations
    np.testing.assert_array_equal(a.x, b.x)


# ----------------------------------------------------------------------
# correctness: sweep == serial, regardless of execution strategy
# ----------------------------------------------------------------------
def test_sweep_matches_serial_run_method(tmp_path):
    tasks = [_task(m) for m in METHODS]
    swept = run_sweep(tasks, workers=0, cache_dir=tmp_path)
    for task, res in zip(tasks, swept):
        ref = run_method(task.problem, task.method, task.n_procs,
                         task.size_scale, task.max_steps, task.seed)
        _assert_same_result(ref, res)


def test_sweep_with_pool_matches_serial(tmp_path):
    """Parallel dispatch (or its inline fallback) returns the same
    results in the same order."""
    tasks = [_task(m) for m in METHODS]
    swept = run_sweep(tasks, workers=2, cache_dir=tmp_path,
                      use_cache=False)
    for task, res in zip(tasks, swept):
        ref = run_method(task.problem, task.method, task.n_procs,
                         task.size_scale, task.max_steps, task.seed)
        _assert_same_result(ref, res)


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------
def test_cache_hit_skips_recompute(tmp_path, monkeypatch):
    task = _task("distributed-southwell")
    first = run_sweep([task], workers=0, cache_dir=tmp_path)[0]
    assert list(tmp_path.glob("*.pkl")), "no cache entry written"

    import repro.experiments.parallel as par

    def boom(_):  # pragma: no cover - must not be reached
        raise AssertionError("cache miss: task was recomputed")

    monkeypatch.setattr(par, "_run_task", boom)
    again = par.run_sweep([task], workers=0, cache_dir=tmp_path)[0]
    _assert_same_result(first, again)


def test_task_key_isolates_parameters_and_code(monkeypatch):
    # pin the baseline mode: the suite itself may run under a forced
    # REPRO_RUNTIME, and the whole point here is that changing the knob
    # changes the key
    monkeypatch.delenv("REPRO_RUNTIME", raising=False)
    base = task_key(_task("distributed-southwell"))
    assert base != task_key(_task("block-jacobi"))
    assert base != task_key(_task("distributed-southwell", n_procs=7))
    assert base != task_key(_task("distributed-southwell", seed=1))
    assert base != task_key(_task("distributed-southwell", max_steps=9))
    # the runtime/backend knobs are part of the key: results produced
    # under a forced mode never masquerade as the default's
    monkeypatch.setenv("REPRO_RUNTIME", "object")
    assert base != task_key(_task("distributed-southwell"))
    assert code_digest()  # stable, non-empty


def test_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "xyz"))
    assert default_cache_dir() == tmp_path / "xyz"
    monkeypatch.delenv("REPRO_SWEEP_CACHE")
    assert default_cache_dir().name == "repro-southwell"


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    task = _task("block-jacobi")
    key = task_key(task)
    (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
    res = run_sweep([task], workers=0, cache_dir=tmp_path)[0]
    ref = run_method(task.problem, task.method, task.n_procs,
                     task.size_scale, task.max_steps, task.seed)
    _assert_same_result(ref, res)


# ----------------------------------------------------------------------
# suite_runs wiring
# ----------------------------------------------------------------------
def test_suite_runs_workers_param(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
    serial = suite_runs((_PROB["problem"],), _PROB["n_procs"],
                        _PROB["size_scale"], _PROB["max_steps"],
                        _PROB["seed"], workers=0)
    swept = suite_runs((_PROB["problem"],), _PROB["n_procs"],
                       _PROB["size_scale"], _PROB["max_steps"],
                       _PROB["seed"], workers=2)
    assert [r.name for r in serial] == [r.name for r in swept]
    for m in METHODS:
        _assert_same_result(serial[0].results[m], swept[0].results[m])


def test_suite_runs_reads_workers_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_WORKERS", "2")
    swept = suite_runs((_PROB["problem"],), _PROB["n_procs"],
                       _PROB["size_scale"], _PROB["max_steps"],
                       _PROB["seed"])
    ref = run_method(_PROB["problem"], "block-jacobi", _PROB["n_procs"],
                     _PROB["size_scale"], _PROB["max_steps"], _PROB["seed"])
    _assert_same_result(ref, swept[0].results["block-jacobi"])
    monkeypatch.setenv("REPRO_WORKERS", "junk")
    assert suite_runs((_PROB["problem"],), _PROB["n_procs"],
                      _PROB["size_scale"], _PROB["max_steps"],
                      _PROB["seed"])  # junk env degrades to serial


def test_sweep_task_accepts_tuples(tmp_path):
    res = run_sweep([(_PROB["problem"], "block-jacobi", _PROB["n_procs"],
                      _PROB["size_scale"], _PROB["max_steps"],
                      _PROB["seed"])], workers=0, cache_dir=tmp_path)
    assert res[0].method == "block-jacobi"
