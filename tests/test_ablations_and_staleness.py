"""Tests for the ablation knobs and asynchronous-delay robustness."""

import numpy as np
import pytest

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.partition import partition
from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE


@pytest.fixture(scope="module")
def system(fem_300):
    part = partition(fem_300, 10, seed=1)
    return build_block_system(fem_300, part)


@pytest.fixture(scope="module")
def state(fem_300):
    rng = np.random.default_rng(8)
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    return x0 / np.linalg.norm(fem_300.matvec(x0)), b


def test_ds_without_deadlock_avoidance_stalls(system, state):
    """The ICCS'16-style scheme freezes: estimates sit above every actual
    norm and no process relaxes."""
    x0, b = state
    ds = DistributedSouthwell(system, deadlock_avoidance=False)
    ds.setup(x0, b)
    idle = 0
    for _ in range(60):
        if ds.step() == 0:
            idle += 1
            if idle >= 3:
                break
        else:
            idle = 0
    assert idle >= 3, "expected a stall without deadlock avoidance"
    assert ds.engine.stats.category_msgs.get(CATEGORY_RESIDUAL, 0) == 0


def test_ds_without_ghost_estimation_still_converges(system, state):
    x0, b = state
    ds = DistributedSouthwell(system, ghost_estimation=False)
    hist = ds.run(x0, b, max_steps=40)
    assert hist.final_norm < 0.05
    # residual bookkeeping stays exact either way
    assert np.isclose(np.linalg.norm(ds.residual_vector()),
                      ds.global_norm(), atol=1e-12)


def test_ps_piggyback_ablation_same_math_more_messages(system, state):
    x0, b = state
    on = ParallelSouthwell(system, piggyback=True)
    on.run(x0, b, max_steps=15)
    off = ParallelSouthwell(system, piggyback=False)
    off.run(x0, b, max_steps=15)
    assert np.allclose(on.history.residual_norms,
                       off.history.residual_norms, rtol=1e-12)
    assert (off.engine.stats.total_messages
            > on.engine.stats.total_messages)
    # the extra messages are exactly one per solve message
    extra = (off.engine.stats.total_messages
             - on.engine.stats.total_messages)
    assert extra == on.engine.stats.category_msgs[CATEGORY_SOLVE]


@pytest.mark.parametrize("cls", [ParallelSouthwell, DistributedSouthwell])
def test_methods_survive_message_delay(cls, system, state):
    """With random whole-epoch message delays, both Southwell variants
    keep making progress (no crash, no stall, eventual convergence)."""
    x0, b = state
    method = cls(system, delay_probability=0.3, seed=3)
    hist = method.run(x0, b, max_steps=80)
    assert hist.final_norm < 0.2


def test_delayed_messages_all_eventually_apply(system, state):
    """After flushing in-flight traffic, the stored residual matches a
    fresh matvec — no update is ever lost, only late."""
    x0, b = state
    ds = DistributedSouthwell(system, delay_probability=0.4, seed=9)
    ds.setup(x0, b)
    for _ in range(20):
        ds.step()
    # flush and apply everything still in flight
    while ds.engine.windows.in_flight:
        ds.engine.windows.flush_all()
        for p in range(system.n_parts):
            for msg in ds.engine.drain(p):
                if "vals" in msg.payload:
                    ds.apply_delta(p, msg.src, msg.payload["vals"])
            ds.refresh_norm(p)
    r_true = np.linalg.norm(b[system.perm] - ds.system.A.matvec(
        np.concatenate(ds.x_blocks)))
    assert np.isclose(ds.global_norm(), r_true, atol=1e-12)
