"""Unit tests for the COO construction format."""

import numpy as np
import pytest

from repro.sparsela import COOMatrix


def test_empty():
    m = COOMatrix.empty((3, 4))
    assert m.nnz == 0
    assert m.shape == (3, 4)
    assert np.allclose(m.to_dense(), np.zeros((3, 4)))


def test_from_dense_roundtrip():
    d = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, -3.0]])
    m = COOMatrix.from_dense(d)
    assert m.nnz == 3
    assert np.allclose(m.to_dense(), d)


def test_from_dense_tolerance():
    d = np.array([[1e-3, 1.0], [0.5, 1e-5]])
    m = COOMatrix.from_dense(d, tol=1e-2)
    assert m.nnz == 2


def test_duplicates_sum():
    m = COOMatrix(np.array([0, 0, 1]), np.array([1, 1, 0]),
                  np.array([2.0, 3.0, 4.0]), (2, 2))
    s = m.sum_duplicates()
    assert s.nnz == 2
    dense = s.to_dense()
    assert dense[0, 1] == 5.0
    assert dense[1, 0] == 4.0


def test_duplicates_sum_preserves_dense():
    rng = np.random.default_rng(0)
    rows = rng.integers(0, 10, 200)
    cols = rng.integers(0, 10, 200)
    vals = rng.standard_normal(200)
    m = COOMatrix(rows, cols, vals, (10, 10))
    assert np.allclose(m.sum_duplicates().to_dense(), m.to_dense())


def test_transpose():
    d = np.array([[1.0, 2.0], [0.0, 3.0], [4.0, 0.0]])
    m = COOMatrix.from_dense(d)
    assert np.allclose(m.transpose().to_dense(), d.T)
    assert m.transpose().shape == (2, 3)


def test_to_csr_matches_dense():
    rng = np.random.default_rng(3)
    d = rng.standard_normal((8, 12))
    d[rng.random((8, 12)) > 0.3] = 0.0
    m = COOMatrix.from_dense(d)
    csr = m.to_csr()
    assert np.allclose(csr.to_dense(), d)
    # canonical form: sorted columns per row
    for i in range(8):
        cols, _ = csr.row(i)
        assert np.all(np.diff(cols) > 0)


def test_to_csr_sums_duplicates():
    m = COOMatrix(np.array([1, 1, 1]), np.array([2, 2, 0]),
                  np.array([1.0, 1.0, 5.0]), (3, 3))
    csr = m.to_csr()
    assert csr.nnz == 2
    assert csr.to_dense()[1, 2] == 2.0


def test_validation_rejects_bad_shapes():
    with pytest.raises(ValueError):
        COOMatrix(np.array([0]), np.array([0, 1]), np.array([1.0]), (2, 2))
    with pytest.raises(ValueError):
        COOMatrix(np.array([5]), np.array([0]), np.array([1.0]), (2, 2))
    with pytest.raises(ValueError):
        COOMatrix(np.array([0]), np.array([7]), np.array([1.0]), (2, 2))


def test_mixed_signs_cancel():
    m = COOMatrix(np.array([0, 0]), np.array([0, 0]),
                  np.array([1.5, -1.5]), (1, 1))
    s = m.sum_duplicates()
    # cancelled entries stay stored (explicit zeros) until pruned
    assert s.nnz == 1
    assert s.to_dense()[0, 0] == 0.0
