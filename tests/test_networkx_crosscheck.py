"""Cross-validation of the graph substrate against networkx.

networkx serves as an independent oracle: BFS distances, coloring
validity, connectivity of grid partitions, and Laplacian spectra are
checked against its implementations.
"""

import networkx as nx
import numpy as np
import pytest

from repro.matrices.fem import fem_poisson_2d
from repro.matrices.poisson import poisson_2d
from repro.partition import (
    greedy_coloring,
    matrix_graph,
    multilevel_bisection,
    partition,
)
from repro.partition.spectral import fiedler_vector
from repro.sparsela import bfs_levels


def _to_nx(A):
    g = nx.Graph()
    g.add_nodes_from(range(A.n_rows))
    rows = A._expanded_row_ids()
    for u, v in zip(rows, A.indices):
        if u != v:
            g.add_edge(int(u), int(v))
    return g


@pytest.fixture(scope="module")
def fem_mat():
    return fem_poisson_2d(target_rows=250, seed=9).matrix


def test_bfs_levels_match_networkx(fem_mat):
    g = _to_nx(fem_mat)
    lengths = nx.single_source_shortest_path_length(g, 0)
    ours = bfs_levels(fem_mat, start=0)
    for node, dist in lengths.items():
        assert ours[node] == dist


def test_coloring_is_proper_per_networkx(fem_mat):
    g = _to_nx(fem_mat)
    colors = greedy_coloring(fem_mat)
    for u, v in g.edges:
        assert colors[u] != colors[v]


def test_coloring_count_comparable_to_networkx_greedy(fem_mat):
    g = _to_nx(fem_mat)
    nx_colors = nx.greedy_color(g, strategy="largest_first")
    n_nx = max(nx_colors.values()) + 1
    n_ours = int(greedy_coloring(fem_mat).max()) + 1
    # same ballpark: neither should need twice the other's colors
    assert n_ours <= 2 * n_nx
    assert n_nx <= 2 * n_ours


def test_bisection_halves_are_connected_on_grid():
    """Multilevel bisection of a grid should produce two connected
    halves (a quality property METIS also delivers)."""
    A = poisson_2d(12)
    g = _to_nx(A)
    side = multilevel_bisection(matrix_graph(A), seed=0)
    for s in (0, 1):
        nodes = [v for v in range(A.n_rows) if side[v] == s]
        assert nx.is_connected(g.subgraph(nodes))


def test_partition_parts_mostly_connected(fem_mat):
    """Multilevel k-way parts are overwhelmingly connected on a planar
    mesh (allow a rare fragmented part from FM moves)."""
    g = _to_nx(fem_mat)
    part = partition(fem_mat, 6, seed=0)
    disconnected = 0
    for p in range(6):
        nodes = [int(v) for v in part.rows_of(p)]
        if not nx.is_connected(g.subgraph(nodes)):
            disconnected += 1
    assert disconnected <= 1


def test_fiedler_vector_matches_networkx(fem_mat):
    """Our Fiedler vector spans the same eigenspace as networkx's (they
    agree up to sign/scale for a simple second eigenvalue)."""
    g = _to_nx(fem_mat)
    ours = fiedler_vector(matrix_graph(fem_mat, weighted=False))
    theirs = nx.fiedler_vector(g, seed=1, method="tracemin_lu")
    ours = ours / np.linalg.norm(ours)
    theirs = np.asarray(theirs)
    theirs = theirs / np.linalg.norm(theirs)
    dot = abs(float(ours @ theirs))
    assert dot > 0.99


def test_algebraic_connectivity_positive(fem_mat):
    """The mesh is connected ⇔ lambda_2 > 0; cross-check via networkx."""
    g = _to_nx(fem_mat)
    assert nx.is_connected(g)
    lam2 = nx.algebraic_connectivity(g, seed=1, method="tracemin_lu")
    assert lam2 > 0
