"""Tests for asynchronous (chaotic) Block Jacobi."""

import numpy as np
import pytest

from repro.core import AsyncBlockJacobi
from repro.core.blockdata import build_block_system
from repro.matrices import fem_poisson_2d
from repro.matrices.suite import load_problem
from repro.partition import partition


@pytest.fixture(scope="module")
def m_matrix_setup():
    prob = fem_poisson_2d(target_rows=800, seed=0)
    part = partition(prob.matrix, 10, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)
    return prob.matrix, system, x0, b


def test_async_bj_converges_on_m_matrix(m_matrix_setup):
    A, system, x0, b = m_matrix_setup
    abj = AsyncBlockJacobi(system)
    hist = abj.run(x0, b, max_turns=30_000, target_norm=0.01,
                   record_every=50)
    assert hist.final_norm <= 0.01


def test_async_bj_straggler_tolerance(m_matrix_setup):
    A, system, x0, b = m_matrix_setup
    slow = np.ones(system.n_parts)
    slow[1] = 0.25
    uniform = AsyncBlockJacobi(system)
    uniform.run(x0, b, max_turns=30_000, target_norm=0.05, record_every=50)
    straggled = AsyncBlockJacobi(system, speed_factors=slow)
    h = straggled.run(x0, b, max_turns=30_000, target_norm=0.05,
                      record_every=50)
    assert h.final_norm <= 0.05
    # asynchronous Jacobi shrugs the straggler off (< 2x penalty versus
    # the near-4x a lockstep all-active method would pay compute-bound)
    assert straggled.engine.elapsed < 2.5 * uniform.engine.elapsed


def test_async_bj_diverges_on_small_hard_blocks():
    """Chaotic relaxation inherits (at least) synchronous Block Jacobi's
    divergence on the calibrated hard suite members with small blocks."""
    prob = load_problem("bone010", size_scale=0.5)
    part = partition(prob.matrix, 128, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)
    abj = AsyncBlockJacobi(system)
    hist = abj.run(x0, b, max_turns=60_000, record_every=256)
    assert hist.final_norm > 1.0 or hist.diverged()


def test_async_bj_validation(m_matrix_setup):
    _, system, x0, b = m_matrix_setup
    with pytest.raises(ValueError):
        AsyncBlockJacobi(system, relax_interval=0.0)
    abj = AsyncBlockJacobi(system)
    with pytest.raises(ValueError):
        abj.run(x0, b)


def test_async_bj_solution_assembly(m_matrix_setup):
    A, system, x0, b = m_matrix_setup
    abj = AsyncBlockJacobi(system)
    abj.run(x0, b, max_turns=500)
    x = abj.solution()
    assert x.shape == (A.n_rows,)
    assert np.all(np.isfinite(x))
