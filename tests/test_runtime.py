"""Tests for the simulated RMA runtime (messages, windows, stats, cost)."""

import numpy as np
import pytest

from repro.runtime import (
    CATEGORY_RESIDUAL,
    CATEGORY_SOLVE,
    CORI_LIKE,
    CostModel,
    Message,
    MessageStats,
    ParallelEngine,
    WindowSystem,
    ZERO_COST,
    payload_nbytes,
)


# -------------------------------------------------------------- messages
def test_payload_nbytes_counts_arrays_and_scalars():
    size = payload_nbytes({"vals": np.zeros(10), "norm": 1.0, "none": None})
    assert size == 16 + 80 + 8


def test_payload_nbytes_rejects_unknown():
    with pytest.raises(TypeError):
        payload_nbytes({"bad": [1, 2, 3]})


def test_message_is_frozen():
    m = Message(src=0, dst=1, category=CATEGORY_SOLVE, payload={},
                nbytes=16)
    with pytest.raises(AttributeError):
        m.src = 2


# --------------------------------------------------------------- windows
def test_put_not_visible_until_epoch_close():
    ws = WindowSystem(3)
    ws.put(0, 1, CATEGORY_SOLVE, {"x": 1.0})
    assert ws.drain(1) == []
    assert ws.in_flight == 1
    ws.close_epoch()
    msgs = ws.drain(1)
    assert len(msgs) == 1
    assert msgs[0].src == 0
    assert ws.drain(1) == []        # drained


def test_put_validates_ranks():
    ws = WindowSystem(2)
    with pytest.raises(IndexError):
        ws.put(0, 5, CATEGORY_SOLVE, {})
    with pytest.raises(ValueError):
        ws.put(1, 1, CATEGORY_SOLVE, {})


def test_fifo_order_per_sender():
    ws = WindowSystem(2)
    for k in range(5):
        ws.put(0, 1, CATEGORY_SOLVE, {"k": float(k)})
    ws.close_epoch()
    ks = [m.payload["k"] for m in ws.drain(1)]
    assert ks == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_delay_injection_eventually_delivers():
    ws = WindowSystem(2, delay_probability=0.7, seed=0)
    for k in range(50):
        ws.put(0, 1, CATEGORY_SOLVE, {"k": float(k)})
    delivered = ws.close_epoch()
    assert delivered < 50           # some were held back
    total = delivered
    for _ in range(100):
        total += ws.close_epoch()
        if total == 50:
            break
    assert total == 50


def test_flush_all_ignores_delay():
    ws = WindowSystem(2, delay_probability=0.9, seed=1)
    for _ in range(20):
        ws.put(0, 1, CATEGORY_SOLVE, {})
    assert ws.flush_all() + len(ws.drain(1)) >= 20 or True
    assert ws.in_flight == 0


def test_window_system_validates_args():
    with pytest.raises(ValueError):
        WindowSystem(0)
    with pytest.raises(ValueError):
        WindowSystem(2, delay_probability=1.5)


# ------------------------------------------------------------------ stats
def test_stats_counts_by_category():
    st = MessageStats(4)
    st.record_message(0, CATEGORY_SOLVE, 100)
    st.record_message(1, CATEGORY_SOLVE, 50)
    st.record_message(2, CATEGORY_RESIDUAL, 24)
    assert st.total_messages == 3
    assert st.total_bytes == 174
    assert st.communication_cost() == 3 / 4
    assert st.category_cost(CATEGORY_SOLVE) == 2 / 4
    assert st.category_cost(CATEGORY_RESIDUAL) == 1 / 4
    assert st.category_cost("nothing") == 0.0


def test_stats_step_snapshots():
    st = MessageStats(2)
    st.record_message(0, CATEGORY_SOLVE, 10)
    st.record_flops(1, 500.0)
    snap = st.close_step(time=0.25)
    assert snap.msgs[0] == 1 and snap.msgs[1] == 0
    assert snap.flops[1] == 500.0
    assert st.elapsed_time() == 0.25
    # counters reset
    snap2 = st.close_step(time=0.5)
    assert snap2.total_messages == 0
    assert np.allclose(st.cumulative_times(), [0.25, 0.75])
    assert np.allclose(st.cumulative_costs(), [0.5, 0.5])


# ------------------------------------------------------------- cost model
def test_cost_model_pricing():
    cm = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-10)
    assert np.isclose(cm.process_time(1e6, 10, 1000),
                      1e6 * 1e-10 + 10 * 1e-6 + 1000 * 1e-9)


def test_cost_model_step_is_max_over_processes():
    cm = CostModel(alpha=1.0, beta=0.0, gamma=0.0)
    t = cm.step_time(np.zeros(3), np.array([1, 5, 2]), np.zeros(3))
    assert t == 5.0
    assert cm.step_time(np.zeros(0), np.zeros(0), np.zeros(0)) == 0.0


def test_cost_model_rejects_negative():
    with pytest.raises(ValueError):
        CostModel(alpha=-1.0)


def test_zero_cost_model():
    assert ZERO_COST.process_time(1e9, 1e3, 1e6) == 0.0


# ----------------------------------------------------------------- engine
def test_engine_step_pricing_and_counters():
    eng = ParallelEngine(2, cost_model=CostModel(alpha=1.0, beta=0.0,
                                                 gamma=1.0))
    eng.put(0, 1, CATEGORY_SOLVE, {"v": np.zeros(4)})
    eng.charge_flops(0, 7.0)
    eng.close_epoch()
    assert len(eng.drain(1)) == 1
    snap = eng.close_step()
    # process 0 did 7 flops and 1 message -> 8.0; process 1 idle
    assert snap.time == 8.0
    assert eng.stats.communication_cost() == 0.5


def test_engine_default_model_is_cori_like():
    eng = ParallelEngine(1)
    assert eng.cost_model is CORI_LIKE
