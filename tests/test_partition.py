"""Tests for the graph substrate and the multilevel partitioner."""

import numpy as np
import pytest

from repro.matrices.poisson import poisson_2d
from repro.partition import (
    Partition,
    coarsen_graph,
    edge_cut,
    factor_near_square,
    fm_refine,
    greedy_grow_bisection,
    grid_blocks_2d,
    heavy_edge_matching,
    imbalance,
    matrix_graph,
    multilevel_bisection,
    neighbor_lists,
    partition,
    partition_from_parts,
    partition_graph,
    parts_are_valid,
)
from repro.partition.bisect import bisection_cut
from repro.partition.coarsen import contract
from repro.sparsela import CSRMatrix


@pytest.fixture(scope="module")
def pgraph():
    return matrix_graph(poisson_2d(12))


# ------------------------------------------------------------------ graph
def test_matrix_graph_structure(pgraph):
    pgraph.validate()
    assert pgraph.n_vertices == 144
    # interior grid vertex has 4 neighbors
    assert pgraph.degrees().max() == 4


def test_matrix_graph_weights():
    d = np.array([[2.0, -0.5, 0.0],
                  [-0.5, 2.0, 1.5],
                  [0.0, 1.5, 2.0]])
    g = matrix_graph(CSRMatrix.from_dense(d))
    # weight = |a_uv| + |a_vu|
    assert np.isclose(sorted(g.edge_weights(1))[0], 1.0)
    assert np.isclose(sorted(g.edge_weights(1))[1], 3.0)


def test_matrix_graph_asymmetric_pattern_symmetrised():
    d = np.array([[1.0, 2.0], [0.0, 1.0]])
    g = matrix_graph(CSRMatrix.from_dense(d))
    g.validate()
    assert g.n_edges == 1


def test_matrix_graph_requires_square():
    with pytest.raises(ValueError):
        matrix_graph(CSRMatrix.from_dense(np.ones((2, 3))))


# --------------------------------------------------------------- matching
def test_matching_is_valid(pgraph):
    match = heavy_edge_matching(pgraph, seed=3)
    assert np.all(match[match] == np.arange(pgraph.n_vertices))


def test_matching_prefers_heavy_edges():
    # two heavy pairs (0-1, 2-3) and a weak 1-2 link: whatever the greedy
    # visit order, the heavy pairs win
    d = np.eye(4) * 2
    d[0, 1] = d[1, 0] = -10.0
    d[1, 2] = d[2, 1] = -0.1
    d[2, 3] = d[3, 2] = -10.0
    g = matrix_graph(CSRMatrix.from_dense(d))
    for seed in range(5):
        match = heavy_edge_matching(g, seed=seed)
        assert match[0] == 1 and match[1] == 0
        assert match[2] == 3 and match[3] == 2


def test_contract_preserves_total_weight(pgraph):
    match = heavy_edge_matching(pgraph, seed=0)
    level = contract(pgraph, match)
    assert level.graph.total_vertex_weight() == pgraph.total_vertex_weight()
    assert level.graph.n_vertices < pgraph.n_vertices
    level.graph.validate()


def test_coarsen_hierarchy_shrinks(pgraph):
    levels = coarsen_graph(pgraph, min_vertices=20)
    sizes = [lv.graph.n_vertices for lv in levels]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] <= max(20, int(0.92 * sizes[-2])) if len(sizes) > 1 \
        else True


# --------------------------------------------------------------- bisection
def test_greedy_grow_respects_target(pgraph):
    side = greedy_grow_bisection(pgraph, target0=72.0, seed=1)
    w0 = pgraph.vwgt[side == 0].sum()
    assert 60 <= w0 <= 84


def test_fm_refine_does_not_worsen_cut(pgraph):
    side = greedy_grow_bisection(pgraph, target0=72.0, seed=2)
    before = bisection_cut(pgraph, side.copy())
    refined = fm_refine(pgraph, side.copy(), target0=72.0)
    assert bisection_cut(pgraph, refined) <= before


def test_multilevel_bisection_beats_random(pgraph):
    rng = np.random.default_rng(0)
    random_side = (rng.random(144) < 0.5).astype(np.int8)
    side = multilevel_bisection(pgraph, seed=0)
    assert bisection_cut(pgraph, side) < bisection_cut(pgraph, random_side)


# ------------------------------------------------------------------ k-way
@pytest.mark.parametrize("k", [2, 3, 7, 16])
def test_partition_graph_valid_and_balanced(pgraph, k):
    parts = partition_graph(pgraph, k, seed=0)
    assert parts_are_valid(parts, k)
    assert imbalance(pgraph, parts, k) < 1.35


def test_partition_graph_one_part(pgraph):
    parts = partition_graph(pgraph, 1)
    assert np.all(parts == 0)


def test_partition_matrix_beats_strided():
    A = poisson_2d(16)
    g = matrix_graph(A)
    ml = partition(A, 8, method="multilevel", seed=0)
    st = partition(A, 8, method="strided")
    assert edge_cut(g, ml.parts) <= edge_cut(g, st.parts)


def test_partition_object_consistency():
    A = poisson_2d(10)
    part = partition(A, 5, seed=1)
    assert isinstance(part, Partition)
    assert np.array_equal(np.sort(part.perm), np.arange(100))
    for p in range(5):
        assert np.all(part.parts[part.rows_of(p)] == p)
        assert part.size_of(p) == len(part.rows_of(p))
    assert part.offsets[-1] == 100


def test_neighbor_lists_symmetric():
    A = poisson_2d(10)
    part = partition(A, 6, seed=0)
    for p in range(6):
        for q in part.neighbors[p]:
            assert p in part.neighbors[int(q)]
            assert p != q


def test_partition_grid_method():
    A = poisson_2d(12)
    part = partition(A, 9, method="grid", grid_shape=(12, 12))
    assert parts_are_valid(part.parts, 9)
    sizes = np.diff(part.offsets)
    assert sizes.max() == 16 and sizes.min() == 16


def test_partition_errors():
    A = poisson_2d(4)
    with pytest.raises(ValueError):
        partition(A, 0)
    with pytest.raises(ValueError):
        partition(A, 100)
    with pytest.raises(ValueError):
        partition(A, 2, method="grid")
    with pytest.raises(ValueError):
        partition(A, 2, method="grid", grid_shape=(3, 3))
    with pytest.raises(ValueError):
        partition(A, 2, method="nope")
    with pytest.raises(ValueError):
        partition_from_parts(A, np.zeros(5, dtype=int), 1)


# ----------------------------------------------------- partition invariants
# The same contract, checked across every partitioner: any method may
# place rows differently, but the Partition it returns must satisfy the
# structural properties the block builder and solvers rely on.
_METHOD_CASES = [
    ("multilevel", {}),
    ("spectral", {}),
    ("grid", {"grid_shape": (20, 20)}),
    ("strided", {}),
]


@pytest.fixture(scope="module")
def inv_matrix():
    return poisson_2d(20)


@pytest.mark.parametrize("method,kwargs", _METHOD_CASES,
                         ids=[m for m, _ in _METHOD_CASES])
def test_invariant_perm_is_a_permutation(inv_matrix, method, kwargs):
    part = partition(inv_matrix, 8, method=method, seed=0, **kwargs)
    assert np.array_equal(np.sort(part.perm), np.arange(400))
    # perm groups rows by owner in part order
    assert np.all(np.diff(part.parts[part.perm]) >= 0)


@pytest.mark.parametrize("method,kwargs", _METHOD_CASES,
                         ids=[m for m, _ in _METHOD_CASES])
def test_invariant_offsets_cover_all_rows(inv_matrix, method, kwargs):
    part = partition(inv_matrix, 8, method=method, seed=0, **kwargs)
    sizes = np.diff(part.offsets)
    assert part.offsets[0] == 0 and part.offsets[-1] == 400
    assert np.all(sizes > 0)
    assert np.array_equal(sizes, np.bincount(part.parts, minlength=8))


@pytest.mark.parametrize("method,kwargs", _METHOD_CASES,
                         ids=[m for m, _ in _METHOD_CASES])
def test_invariant_balanced_sizes(inv_matrix, method, kwargs):
    g = matrix_graph(inv_matrix)
    part = partition(inv_matrix, 8, method=method, seed=0, **kwargs)
    assert imbalance(g, part.parts, 8) < 1.35


@pytest.mark.parametrize("method,kwargs", _METHOD_CASES,
                         ids=[m for m, _ in _METHOD_CASES])
def test_invariant_neighbor_lists_symmetric(inv_matrix, method, kwargs):
    part = partition(inv_matrix, 8, method=method, seed=0, **kwargs)
    for p in range(8):
        for q in part.neighbors[p]:
            assert p != q
            assert p in part.neighbors[int(q)]


# ----------------------------------------------------------- pinned digests
# The multilevel partitioner's output is pinned bit-for-bit: downstream
# run histories (and the persistent setup cache) assume a given
# (matrix, P, seed) always yields the same partition, whatever kernel
# backend computed it.  ``poisson_2d(110)`` at P=256 is the af_5_k101
# suite analog — the paper-scale case the setup bench times.
_PINNED = [
    (24, 8, "1355cf2f6344ce7e", 212.0),
    (40, 16, "1bee47fa0fb511ab", 600.0),
    (110, 256, "4a394285ea246c79", 9092.0),
]


def _parts_digest(parts):
    import hashlib

    return hashlib.sha256(parts.astype(np.int64).tobytes()).hexdigest()[:16]


@pytest.mark.parametrize("n,k,digest,cut", _PINNED,
                         ids=[f"n{n}-P{k}" for n, k, _, _ in _PINNED])
def test_multilevel_partition_is_pinned(n, k, digest, cut):
    A = poisson_2d(n)
    part = partition(A, k, method="multilevel", seed=0)
    assert _parts_digest(part.parts) == digest
    assert edge_cut(matrix_graph(A), part.parts) == cut


def test_fast_kernels_match_reference_backend():
    from repro.sparsela.backend import use_backend

    A = poisson_2d(40)
    fast = partition(A, 16, method="multilevel", seed=0)
    with use_backend("reference"):
        ref = partition(A, 16, method="multilevel", seed=0)
    assert np.array_equal(fast.parts, ref.parts)
    assert np.array_equal(fast.perm, ref.perm)
    assert _parts_digest(fast.parts) == "1bee47fa0fb511ab"


def test_hem_rounds_kernel_matches_lists_kernel():
    from repro.partition._kernels import _hem_match_lists, _hem_match_rounds

    for n, seed in ((12, 0), (20, 1), (31, 2)):
        g = matrix_graph(poisson_2d(n))
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.n_vertices)
        assert np.array_equal(_hem_match_rounds(g, perm),
                              _hem_match_lists(g, perm))


def test_numba_kernels_match_fast_kernels():
    pytest.importorskip("numba")
    from repro.sparsela.backend import use_backend

    A = poisson_2d(40)
    fast = partition(A, 16, method="multilevel", seed=0)
    with use_backend("numba"):
        nb = partition(A, 16, method="multilevel", seed=0)
    assert np.array_equal(fast.parts, nb.parts)


# ------------------------------------------------------------------- grid
def test_factor_near_square():
    assert factor_near_square(16) == (4, 4)
    assert factor_near_square(12) in ((3, 4), (4, 3))
    assert factor_near_square(7) == (1, 7)
    with pytest.raises(ValueError):
        factor_near_square(0)


def test_grid_blocks_cover_and_balance():
    parts = grid_blocks_2d(10, 10, 4)
    assert parts_are_valid(parts, 4)
    counts = np.bincount(parts)
    assert counts.max() == counts.min() == 25


def test_grid_blocks_contiguous():
    parts = grid_blocks_2d(8, 8, 4).reshape(8, 8)
    # each block is a contiguous rectangle: its bounding box has its area
    for p in range(4):
        ys, xs = np.nonzero(parts == p)
        area = (ys.max() - ys.min() + 1) * (xs.max() - xs.min() + 1)
        assert area == ys.size
