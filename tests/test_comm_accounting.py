"""Tests for the communication accounting added for Tables 3/4:
receive-side costs and per-category cumulative curves."""

import numpy as np
import pytest

from repro.api import solve
from repro.runtime import (
    CATEGORY_RESIDUAL,
    CATEGORY_SOLVE,
    CostModel,
    MessageStats,
    ParallelEngine,
)


def test_receives_counted_on_drain():
    eng = ParallelEngine(3)
    eng.put(0, 2, CATEGORY_SOLVE, {"x": 1.0})
    eng.put(1, 2, CATEGORY_SOLVE, {"x": 2.0})
    eng.close_epoch()
    eng.drain(2)
    _, _, _, recvs = eng.stats.current_step_arrays()
    assert recvs[2] == 2
    assert recvs[0] == recvs[1] == 0


def test_receive_cost_prices_step():
    cm = CostModel(alpha=1.0, alpha_recv=10.0, beta=0.0, gamma=0.0)
    eng = ParallelEngine(2, cost_model=cm)
    eng.put(0, 1, CATEGORY_SOLVE, {})
    eng.close_epoch()
    eng.drain(1)
    snap = eng.close_step()
    # sender pays 1, receiver pays 10 -> step = max = 10
    assert snap.time == 10.0


def test_cost_model_recv_validation():
    with pytest.raises(ValueError):
        CostModel(alpha_recv=-1.0)
    cm = CostModel(alpha=0.0, alpha_recv=2.0, beta=0.0, gamma=0.0)
    assert cm.process_time(0, 0, 0, recvs=3) == 6.0


def test_per_step_category_counts():
    st = MessageStats(2)
    st.record_message(0, CATEGORY_SOLVE, 8)
    st.record_message(0, CATEGORY_RESIDUAL, 8)
    st.close_step()
    st.record_message(1, CATEGORY_RESIDUAL, 8)
    st.close_step()
    solve = st.cumulative_category_costs(CATEGORY_SOLVE)
    res = st.cumulative_category_costs(CATEGORY_RESIDUAL)
    assert np.allclose(solve, [0.5, 0.5])
    assert np.allclose(res, [0.5, 1.0])
    assert st.steps[0].category_msgs == {CATEGORY_SOLVE: 1,
                                         CATEGORY_RESIDUAL: 1}


def test_comm_breakdown_at_target(fem_300):
    res = solve(fem_300, method="parallel-southwell", n_parts=8,
                max_steps=40, seed=0)
    target = 0.2
    split = res.comm_breakdown_at(target)
    assert split is not None
    solve_part, residual_part = split
    # the split sums to the total comm cost at the same crossing
    total = res.history.cost_to_reach(target, axis="comm_costs")
    assert np.isclose(solve_part + residual_part, total, rtol=1e-9)
    # unreachable target -> None
    assert res.comm_breakdown_at(1e-30) is None


def test_breakdown_curves_monotone(fem_300):
    res = solve(fem_300, method="distributed-southwell", n_parts=8,
                max_steps=20, seed=0)
    assert np.all(np.diff(res.solve_comm_curve) >= 0)
    assert np.all(np.diff(res.residual_comm_curve) >= 0)
    assert len(res.solve_comm_curve) == len(res.history.parallel_steps)
    # final curve values equal the run totals
    assert np.isclose(res.solve_comm_curve[-1], res.solve_comm)
    assert np.isclose(res.residual_comm_curve[-1], res.residual_comm)
