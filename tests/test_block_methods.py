"""Tests for the three distributed block methods (Algorithms 1-3).

These check the paper-critical properties: exact residual bookkeeping
through the message traffic, the Parallel Southwell criterion, PS's
exact-Γ invariant, DS's Γ̃ mirror invariant, message categories, and the
relative communication behaviour the paper reports.
"""

import numpy as np
import pytest

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.partition import partition
from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE
from repro.solvers.block_jacobi import BlockJacobi

METHODS = [BlockJacobi, ParallelSouthwell, DistributedSouthwell]


@pytest.fixture(scope="module")
def fem_system(fem_300):
    part = partition(fem_300, 8, seed=0)
    return build_block_system(fem_300, part)


@pytest.fixture(scope="module")
def fem_state(fem_300):
    rng = np.random.default_rng(5)
    n = fem_300.n_rows
    x0 = rng.uniform(-1, 1, n)
    b = np.zeros(n)
    x0 = x0 / np.linalg.norm(fem_300.matvec(x0))
    return x0, b


@pytest.mark.parametrize("cls", METHODS)
def test_residual_bookkeeping_exact(cls, fem_system, fem_state, fem_300):
    """After any number of steps, the stored residual blocks equal
    b - A x for the assembled x, to rounding."""
    x0, b = fem_state
    method = cls(fem_system)
    method.run(x0, b, max_steps=12)
    x = method.solution()
    r_true = b - fem_300.matvec(x)
    r_stored = method.residual_vector()
    assert np.allclose(r_stored, r_true, atol=1e-12)
    assert np.isclose(method.global_norm(), np.linalg.norm(r_true),
                      atol=1e-12)


@pytest.mark.parametrize("cls", METHODS)
def test_history_is_recorded(cls, fem_system, fem_state):
    x0, b = fem_state
    method = cls(fem_system)
    hist = method.run(x0, b, max_steps=10)
    assert len(hist) == 11                      # initial + 10 steps
    assert np.isclose(hist.residual_norms[0], 1.0, atol=1e-12)
    assert hist.parallel_steps == list(range(11))
    assert all(np.diff(hist.comm_costs) >= 0)


def test_block_jacobi_all_active(fem_system, fem_state):
    x0, b = fem_state
    bj = BlockJacobi(fem_system)
    hist = bj.run(x0, b, max_steps=5)
    assert all(f == 1.0 for f in hist.active_fractions[1:])
    # one message per neighbor edge per step, no residual messages
    stats = bj.engine.stats
    n_edges = sum(len(fem_system.neighbors_of(p)) for p in range(8))
    assert stats.category_msgs[CATEGORY_SOLVE] == 5 * n_edges
    assert CATEGORY_RESIDUAL not in stats.category_msgs


def test_southwell_criterion_no_adjacent_relaxers_ps(fem_system, fem_state):
    """PS with exact norms never relaxes two neighbors simultaneously."""
    x0, b = fem_state
    ps = ParallelSouthwell(fem_system)
    ps.setup(x0, b)
    for _ in range(10):
        before = [np.array(x, copy=True) for x in ps.x_blocks]
        ps.step()
        relaxed = {p for p in range(8)
                   if not np.array_equal(before[p], ps.x_blocks[p])}
        for p in relaxed:
            assert not relaxed & {int(q) for q in
                                  fem_system.neighbors_of(p)}


def test_ps_gamma_always_exact(fem_system, fem_state):
    x0, b = fem_state
    ps = ParallelSouthwell(fem_system)
    ps.setup(x0, b)
    for _ in range(12):
        ps.step()
        for p in range(8):
            nbrs = fem_system.neighbors_of(p)
            expected = np.array([float(ps.norms[int(q)])
                                 * float(ps.norms[int(q)]) for q in nbrs])
            assert np.array_equal(ps.gamma_sq[p], expected)


def test_ds_tilde_mirror_invariant(fem_system, fem_state):
    """Γ̃ is bit-exact: what p thinks q believes about p equals what q
    actually believes — the paper's 'always exactly known' claim."""
    x0, b = fem_state
    ds = DistributedSouthwell(fem_system)
    ds.setup(x0, b)
    pos = [{int(t): j for j, t in enumerate(fem_system.neighbors_of(q))}
           for q in range(8)]
    for _ in range(15):
        ds.step()
        for p in range(8):
            for i, q in enumerate(fem_system.neighbors_of(p)):
                q = int(q)
                assert ds.tilde_sq[p][i] == ds.gamma_sq[q][pos[q][p]]


def test_ds_estimates_bounded_below_by_ghost(fem_system, fem_state):
    """The norm estimate of a neighbor never falls below the part of its
    residual the ghost layer can see."""
    x0, b = fem_state
    ds = DistributedSouthwell(fem_system)
    ds.setup(x0, b)
    for _ in range(10):
        ds.step()
        for p in range(8):
            for i, q in enumerate(fem_system.neighbors_of(p)):
                z = ds.ghost[p][int(q)]
                assert ds.gamma_sq[p][i] >= float(z @ z) - 1e-12


def test_ds_sends_fewer_residual_messages_than_ps(fem_system, fem_state):
    x0, b = fem_state
    ps = ParallelSouthwell(fem_system)
    ps.run(*fem_state, max_steps=20)
    ds = DistributedSouthwell(fem_system)
    ds.run(*fem_state, max_steps=20)
    ps_res = ps.engine.stats.category_msgs.get(CATEGORY_RESIDUAL, 0)
    ds_res = ds.engine.stats.category_msgs.get(CATEGORY_RESIDUAL, 0)
    assert ds_res < ps_res
    # and fewer messages overall — the headline claim
    assert (ds.engine.stats.total_messages
            < ps.engine.stats.total_messages)


def test_ds_no_deadlock_progress(fem_system, fem_state):
    """Distributed Southwell keeps relaxing (never all-idle stall) until
    convergence territory."""
    x0, b = fem_state
    ds = DistributedSouthwell(fem_system)
    ds.setup(x0, b)
    for _ in range(25):
        active = ds.step()
        if ds.global_norm() < 1e-8:
            break
        assert active > 0, "deadlock: no process relaxed"


@pytest.mark.parametrize("cls", METHODS)
def test_methods_converge_on_easy_problem(cls, poisson_100):
    rng = np.random.default_rng(3)
    x0 = rng.uniform(-1, 1, 100)
    b = np.zeros(100)
    x0 /= np.linalg.norm(poisson_100.matvec(x0))
    part = partition(poisson_100, 4, seed=0)
    system = build_block_system(poisson_100, part)
    method = cls(system)
    hist = method.run(x0, b, max_steps=40)
    assert hist.final_norm < 0.05


def test_stop_at_target(fem_system, fem_state):
    x0, b = fem_state
    bj = BlockJacobi(fem_system)
    hist = bj.run(x0, b, max_steps=50, target_norm=0.1, stop_at_target=True)
    assert hist.final_norm <= 0.1
    assert len(hist) < 51


def test_run_requires_matching_sizes(fem_system):
    bj = BlockJacobi(fem_system)
    with pytest.raises(ValueError):
        bj.setup(np.zeros(5), np.zeros(5))


def test_solution_permutation_roundtrip(fem_system, fem_state, fem_300):
    """solution() undoes the partition permutation."""
    x0, b = fem_state
    bj = BlockJacobi(fem_system)
    bj.run(x0, b, max_steps=0)
    assert np.allclose(bj.solution(), x0, atol=1e-15)
