"""Property-based tests for the window system and async engine delivery.

Delivery guarantees the solvers rely on, checked over random traffic:

- lockstep: every put is delivered exactly once, after exactly one epoch
  close (no delays), in per-sender FIFO order;
- with delays: still exactly once, still per-sender FIFO, eventually;
- async: exactly once, per-sender FIFO, never before its stamp.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import CATEGORY_SOLVE, CostModel, WindowSystem
from repro.runtime.async_engine import AsyncEngine


def traffic(n_procs=4, max_msgs=40):
    """Strategy: a list of (src, dst) pairs with src != dst."""
    pair = st.tuples(st.integers(0, n_procs - 1),
                     st.integers(0, n_procs - 1)).filter(
        lambda t: t[0] != t[1])
    return st.lists(pair, min_size=0, max_size=max_msgs)


@given(traffic())
@settings(max_examples=50, deadline=None)
def test_lockstep_exactly_once_and_fifo(pairs):
    ws = WindowSystem(4)
    for k, (src, dst) in enumerate(pairs):
        ws.put(src, dst, CATEGORY_SOLVE, {"k": float(k)})
    ws.close_epoch()
    seen = []
    for p in range(4):
        last_per_sender: dict[int, float] = {}
        for msg in ws.drain(p):
            assert msg.dst == p
            k = msg.payload["k"]
            seen.append(k)
            if msg.src in last_per_sender:
                assert k > last_per_sender[msg.src], "FIFO violated"
            last_per_sender[msg.src] = k
    assert sorted(seen) == [float(k) for k in range(len(pairs))]
    # nothing left anywhere
    assert ws.in_flight == 0
    assert all(not ws.drain(p) for p in range(4))


@given(traffic(), st.floats(0.1, 0.8), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_delayed_delivery_exactly_once(pairs, prob, seed):
    ws = WindowSystem(4, delay_probability=prob, seed=seed)
    for k, (src, dst) in enumerate(pairs):
        ws.put(src, dst, CATEGORY_SOLVE, {"k": float(k)})
    seen = []
    for _ in range(200):
        ws.close_epoch()
        for p in range(4):
            seen.extend(m.payload["k"] for m in ws.drain(p))
        if len(seen) == len(pairs):
            break
    else:
        ws.flush_all()
        for p in range(4):
            seen.extend(m.payload["k"] for m in ws.drain(p))
    assert sorted(seen) == [float(k) for k in range(len(pairs))]


@given(traffic(), st.floats(0.0, 50.0))
@settings(max_examples=30, deadline=None)
def test_async_delivery_respects_stamps(pairs, latency):
    cm = CostModel(alpha=1.0, alpha_recv=0.0, beta=0.0, gamma=0.0)
    eng = AsyncEngine(4, cost_model=cm, network_latency=latency)
    stamps = {}
    for k, (src, dst) in enumerate(pairs):
        eng.put(src, dst, CATEGORY_SOLVE, {"k": float(k)})
        stamps[float(k)] = eng.clocks[src] + latency
    seen = []
    for p in range(4):
        # before advancing: nothing earlier than its stamp is readable
        for msg in eng.read(p):
            assert stamps[msg.payload["k"]] <= eng.clocks[p]
            seen.append(msg.payload["k"])
    # advance everyone far enough and read the rest
    for p in range(4):
        eng.charge_idle(p, 1e6)
        last_per_sender: dict[int, float] = {}
        for msg in eng.read(p):
            k = msg.payload["k"]
            seen.append(k)
            if msg.src in last_per_sender:
                assert k > last_per_sender[msg.src]
            last_per_sender[msg.src] = k
    assert sorted(seen) == [float(k) for k in range(len(pairs))]


@given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=6))
@settings(max_examples=30, deadline=None)
def test_async_scheduler_is_min_clock(advances):
    n = len(advances)
    eng = AsyncEngine(n)
    order = []
    for adv in sorted(advances):
        p = eng.next_process()
        order.append(float(eng.clocks[p]))
        eng.charge_idle(p, adv)
        eng.reschedule(p)
    # the clock values handed out are non-decreasing
    assert order == sorted(order)
