"""Cross-backend equivalence suite for the kernel dispatch layer.

Every registered backend must agree with the pure-numpy ``reference``
backend to 1e-12 on all four primitives — matvec, rmatvec, triangular
solve, Gauss-Seidel sweep — including degenerate shapes (empty rows,
empty matrices, single-row systems).  The ``numba`` backend is optional:
its cases skip cleanly when numba is not importable.

The suite also pins the *seed* behaviour: a Distributed Southwell run
under the ``reference`` backend must reproduce the exact pre-backend
convergence history (sha256 over the norm + relaxation arrays), and the
default compiled backend must not perturb it either — the dispatch layer
is a pure speedup, not a numerical change.
"""

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparsela import CSRMatrix, available_backends, use_backend
from repro.sparsela import backend as backend_mod
from repro.sparsela.kernels import (
    gauss_seidel_sweep,
    gauss_seidel_sweep_reference,
    jacobi_sweep,
    lower_triangular_solve,
    sor_sweep,
)

BACKENDS = available_backends()
FAST_BACKENDS = [b for b in BACKENDS if b != "reference"]

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def sparse_dense(max_dim: int = 12):
    """Strategy: a random small dense matrix with many zeros."""
    dims = st.tuples(st.integers(1, max_dim), st.integers(1, max_dim))
    return dims.flatmap(lambda mn: hnp.arrays(
        np.float64, mn,
        elements=st.one_of(st.just(0.0),
                           st.floats(-10, 10, allow_nan=False))))


def spd_dense(max_dim: int = 10):
    """Strategy: a random small SPD matrix with unit-scale diagonal."""
    def make(base):
        spd = base @ base.T + np.eye(base.shape[0])
        spd[np.abs(spd) < 0.05] = 0.0
        np.fill_diagonal(spd, np.abs(np.diag(base @ base.T)) + 1.0)
        return spd
    dim = st.integers(1, max_dim)
    return dim.flatmap(lambda n: hnp.arrays(
        np.float64, (n, n),
        elements=st.floats(-1, 1, allow_nan=False)).map(make))


# ----------------------------------------------------------------------
# matvec / rmatvec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", FAST_BACKENDS)
@given(dense=sparse_dense(), seed=st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_matvec_matches_reference(name, dense, seed):
    A = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(dense.shape[1])
    with use_backend("reference"):
        ref = A.matvec(x)
    with use_backend(name):
        fast = A.matvec(x)
        out = np.empty(A.n_rows)
        res = A.matvec(x, out=out)
    assert res is out
    np.testing.assert_allclose(fast, ref, atol=1e-12, rtol=0)
    np.testing.assert_allclose(out, ref, atol=1e-12, rtol=0)


@pytest.mark.parametrize("name", FAST_BACKENDS)
@given(dense=sparse_dense(), seed=st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_rmatvec_matches_reference(name, dense, seed):
    A = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    y = rng.standard_normal(dense.shape[0])
    with use_backend("reference"):
        ref = A.rmatvec(y)
    with use_backend(name):
        fast = A.rmatvec(y)
        out = np.empty(A.n_cols)
        res = A.rmatvec(y, out=out)
    assert res is out
    np.testing.assert_allclose(fast, ref, atol=1e-12, rtol=0)
    np.testing.assert_allclose(out, ref, atol=1e-12, rtol=0)


@pytest.mark.parametrize("name", BACKENDS)
def test_matvec_edge_shapes(name):
    """Empty matrices, empty rows and 1x1 systems behave identically."""
    with use_backend(name):
        empty = CSRMatrix(np.zeros(4, dtype=np.int64),
                          np.zeros(0, dtype=np.int64), np.zeros(0), (3, 5))
        assert np.array_equal(empty.matvec(np.ones(5)), np.zeros(3))
        assert np.array_equal(empty.rmatvec(np.ones(3)), np.zeros(5))

        gappy = CSRMatrix.from_dense(np.array([[0.0, 0.0], [3.0, 0.0]]))
        assert np.array_equal(gappy.matvec(np.array([2.0, 5.0])),
                              np.array([0.0, 6.0]))

        one = CSRMatrix.from_dense(np.array([[2.5]]))
        assert np.array_equal(one.matvec(np.array([2.0])), np.array([5.0]))
        assert np.array_equal(one.rmatvec(np.array([2.0])), np.array([5.0]))


# ----------------------------------------------------------------------
# triangular solve
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", FAST_BACKENDS)
@given(dense=sparse_dense(max_dim=10), seed=st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_solve_lower_matches_reference(name, dense, seed):
    n = min(dense.shape)
    tri = np.tril(dense[:n, :n])
    np.fill_diagonal(tri, np.abs(np.diag(tri)) + 1.0)
    L = CSRMatrix.from_dense(tri)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    ref = lower_triangular_solve(L, b)
    fast = backend_mod._instantiate(name).solve_lower(L, b)
    np.testing.assert_allclose(fast, ref, atol=1e-12, rtol=0)


@pytest.mark.parametrize("name", BACKENDS)
def test_solve_lower_unit_diagonal(name):
    tri = np.array([[0.0, 0.0], [2.0, 0.0]])   # implicit unit diagonal
    L = CSRMatrix.from_dense(tri)
    b = np.array([1.0, 5.0])
    got = backend_mod._instantiate(name).solve_lower(L, b,
                                                     unit_diagonal=True)
    np.testing.assert_allclose(got, [1.0, 3.0], atol=1e-12, rtol=0)


# ----------------------------------------------------------------------
# Gauss-Seidel sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
@given(dense=spd_dense(), seed=st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_gs_sweep_matches_textbook(name, dense, seed):
    A = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    n = A.n_rows
    x = rng.standard_normal(n)
    b = rng.standard_normal(n)
    ref = gauss_seidel_sweep_reference(A, x, b)
    with use_backend(name):
        fast = gauss_seidel_sweep(A, x, b)
    scale = 1.0 + np.abs(ref).max()
    np.testing.assert_allclose(fast, ref, atol=1e-12 * scale, rtol=0)


@pytest.mark.parametrize("name", BACKENDS)
def test_gs_sweep_precomputed_residual_and_single_row(name, rng):
    with use_backend(name):
        A = CSRMatrix.from_dense(np.array([[4.0]]))
        out = gauss_seidel_sweep(A, np.array([1.0]), np.array([8.0]))
        np.testing.assert_allclose(out, [2.0], atol=1e-14)

        dense = np.array([[2.0, -1.0, 0.0],
                          [-1.0, 2.0, -1.0],
                          [0.0, -1.0, 2.0]])
        B = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(3)
        b = rng.standard_normal(3)
        r = b - dense @ x
        np.testing.assert_allclose(
            gauss_seidel_sweep(B, x, b, r=r),
            gauss_seidel_sweep(B, x, b), atol=1e-12)


@pytest.mark.parametrize("name", BACKENDS)
def test_jacobi_and_sor_per_backend(name, poisson_100, rng):
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    d = np.asarray(poisson_100.diagonal())
    expected = x + (b - poisson_100.to_dense() @ x) / d
    with use_backend(name):
        np.testing.assert_allclose(jacobi_sweep(poisson_100, x, b),
                                   expected, atol=1e-12)
        np.testing.assert_allclose(
            sor_sweep(poisson_100, x, b, omega=1.0),
            gauss_seidel_sweep_reference(poisson_100, x, b), atol=1e-10)


# ----------------------------------------------------------------------
# selection machinery
# ----------------------------------------------------------------------
def test_available_backends_contains_required():
    assert "reference" in BACKENDS
    assert "scipy" in BACKENDS


def test_set_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        backend_mod.set_backend("no-such-backend")


@pytest.mark.skipif("numba" in BACKENDS, reason="numba is installed")
def test_numba_unavailable_is_import_error():
    with pytest.raises(ImportError):
        backend_mod.set_backend("numba")


def test_use_backend_restores_previous():
    before = backend_mod.get_backend().name
    with use_backend("reference") as b:
        assert b.name == "reference"
        assert backend_mod.get_backend().name == "reference"
    assert backend_mod.get_backend().name == before


def test_env_var_selects_backend():
    """A fresh process honours REPRO_BACKEND (and falls back on junk)."""
    code = ("from repro.sparsela import get_backend; "
            "print(get_backend().name)")
    env = dict(os.environ, PYTHONPATH="src", REPRO_BACKEND="reference")
    out = subprocess.run([sys.executable, "-W", "ignore", "-c", code],
                         capture_output=True, text=True, env=env, check=True)
    assert out.stdout.strip() == "reference"

    env["REPRO_BACKEND"] = "definitely-not-a-backend"
    out = subprocess.run([sys.executable, "-W", "ignore", "-c", code],
                         capture_output=True, text=True, env=env, check=True)
    assert out.stdout.strip() == backend_mod.default_backend_name()


# ----------------------------------------------------------------------
# seed behaviour round-trip
# ----------------------------------------------------------------------
def _ds_history_digest():
    from repro.core import DistributedSouthwell
    from repro.core.blockdata import build_block_system
    from repro.matrices.poisson import poisson_2d
    from repro.partition import partition
    from repro.sparsela import symmetric_unit_diagonal_scale

    A = symmetric_unit_diagonal_scale(poisson_2d(16)).matrix
    part = partition(A, 8, seed=3)
    system = build_block_system(A, part)
    ds = DistributedSouthwell(system)
    rng = np.random.default_rng(7)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    hist = ds.run(x0, np.zeros(A.n_rows), max_steps=25)
    norms = np.asarray(hist.residual_norms, dtype=np.float64)
    relax = np.asarray(hist.relaxations, dtype=np.int64)
    return hashlib.sha256(norms.tobytes() + relax.tobytes()).hexdigest()


# digest of the same run recorded on the pre-backend seed implementation
SEED_DS_DIGEST = \
    "43241919e53e91ddde3be083df3a0b9a477db7d1c4ff8edb6160dd1d6edb0850"


def test_reference_backend_reproduces_seed_ds_history():
    with use_backend("reference"):
        assert _ds_history_digest() == SEED_DS_DIGEST


def test_default_backend_reproduces_seed_ds_history():
    """The compiled default is a speedup, not a numerical change."""
    assert _ds_history_digest() == SEED_DS_DIGEST
