"""Tests for the multigrid extensions: explicit transfer matrices,
Galerkin coarse operators, and the extra smoothers."""

import numpy as np
import pytest

from repro.multigrid import (
    GaussSeidelSmoother,
    MultigridSolver,
    RedBlackGaussSeidelSmoother,
    WeightedJacobiSmoother,
    bilinear_prolongation,
    full_weighting,
    prolongation_matrix,
    restriction_matrix,
)
from repro.sparsela import CSRMatrix

# MultigridSolver is deprecated (one cycle) in favour of
# solve(method="mg"); these tests pin the legacy behaviour until removal
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ------------------------------------------------------- transfer matrices
def test_restriction_matrix_matches_array_form(rng):
    n_fine = 15
    R = restriction_matrix(n_fine)
    for _ in range(4):
        f = rng.standard_normal(n_fine * n_fine)
        assert np.allclose(R.matvec(f), full_weighting(f, n_fine))


def test_prolongation_matrix_matches_array_form(rng):
    n_coarse = 7
    P = prolongation_matrix(n_coarse)
    for _ in range(4):
        c = rng.standard_normal(n_coarse * n_coarse)
        assert np.allclose(P.matvec(c), bilinear_prolongation(c, n_coarse))


def test_transfer_matrices_adjoint_relation():
    R = restriction_matrix(15)
    P = prolongation_matrix(7)
    assert np.allclose(P.to_dense(), 4.0 * R.to_dense().T)


def test_restriction_row_sums_one():
    """Full weighting preserves constants up to the boundary effect: each
    row of R sums to 1 (interior coarse points see a full stencil)."""
    R = restriction_matrix(15)
    sums = R.to_dense().sum(axis=1)
    interior = sums[sums > 0.99]
    assert interior.size > 0
    assert np.allclose(interior, 1.0)


# ------------------------------------------------------------- matmat
def test_matmat_matches_dense(rng):
    a = rng.standard_normal((8, 6))
    a[rng.random((8, 6)) > 0.4] = 0
    b = rng.standard_normal((6, 9))
    b[rng.random((6, 9)) > 0.4] = 0
    A = CSRMatrix.from_dense(a)
    B = CSRMatrix.from_dense(b)
    assert np.allclose(A.matmat(B).to_dense(), a @ b)
    with pytest.raises(ValueError):
        B.matmat(B)


# ------------------------------------------------------------- galerkin
def test_galerkin_coarse_operator_is_spd():
    mg = MultigridSolver(15, GaussSeidelSmoother(1), GaussSeidelSmoother(1),
                         galerkin=True)
    for level in mg.levels:
        d = level.matrix.to_dense()
        assert np.allclose(d, d.T, atol=1e-10)
        assert np.linalg.eigvalsh(d).min() > 0


def test_galerkin_vcycle_grid_independent():
    rng = np.random.default_rng(5)
    rels = []
    for dim in (15, 31, 63):
        mg = MultigridSolver(dim, GaussSeidelSmoother(1),
                             GaussSeidelSmoother(1), galerkin=True)
        b = rng.uniform(-1, 1, dim * dim)
        hist = mg.solve(b, n_cycles=9)
        rels.append(hist.final_norm / hist.initial_norm)
    assert max(rels) < 1e-6
    assert max(rels) / min(rels) < 30.0


def test_galerkin_matches_rediscretized_accuracy():
    rng = np.random.default_rng(6)
    b = rng.uniform(-1, 1, 31 * 31)
    redisc = MultigridSolver(31, GaussSeidelSmoother(1),
                             GaussSeidelSmoother(1))
    galerk = MultigridSolver(31, GaussSeidelSmoother(1),
                             GaussSeidelSmoother(1), galerkin=True)
    h1 = redisc.solve(b, n_cycles=9)
    h2 = galerk.solve(b, n_cycles=9)
    # both reach deep convergence; neither is catastrophically worse
    assert h1.final_norm < 1e-6 and h2.final_norm < 1e-6


# ------------------------------------------------------------- smoothers
def test_weighted_jacobi_smoother_vcycle_converges():
    rng = np.random.default_rng(7)
    mg = MultigridSolver(31, WeightedJacobiSmoother(0.8),
                         WeightedJacobiSmoother(0.8))
    b = rng.uniform(-1, 1, 31 * 31)
    hist = mg.solve(b, n_cycles=12)
    assert hist.final_norm / hist.initial_norm < 1e-6


def test_plain_jacobi_is_a_worse_smoother_than_damped():
    rng = np.random.default_rng(8)
    b = rng.uniform(-1, 1, 31 * 31)
    plain = MultigridSolver(31, WeightedJacobiSmoother(1.0),
                            WeightedJacobiSmoother(1.0)).solve(b, 9)
    damped = MultigridSolver(31, WeightedJacobiSmoother(0.8),
                             WeightedJacobiSmoother(0.8)).solve(b, 9)
    assert damped.final_norm < plain.final_norm


def test_red_black_gs_smoother_vcycle():
    rng = np.random.default_rng(9)
    mg = MultigridSolver(31, RedBlackGaussSeidelSmoother(),
                         RedBlackGaussSeidelSmoother())
    b = rng.uniform(-1, 1, 31 * 31)
    hist = mg.solve(b, n_cycles=9)
    assert hist.final_norm / hist.initial_norm < 1e-6


def test_red_black_uses_two_colors_on_grid(poisson_100):
    sm = RedBlackGaussSeidelSmoother()
    classes = sm._classes(poisson_100)
    assert len(classes) == 2
    assert sum(c.size for c in classes) == 100


def test_red_black_matches_multicolor_gs(poisson_100, rng):
    from repro.solvers.scalar import multicolor_gs_trace

    b = rng.standard_normal(100)
    x0 = np.zeros(100)
    sm = RedBlackGaussSeidelSmoother()
    out = sm.smooth(poisson_100, x0, b)
    hist = multicolor_gs_trace(poisson_100, x0, b, 1)
    assert np.isclose(np.linalg.norm(b - poisson_100.matvec(out)),
                      hist.final_norm, atol=1e-12)


def test_smoother_validation_extras():
    with pytest.raises(ValueError):
        WeightedJacobiSmoother(omega=0.0)
    with pytest.raises(ValueError):
        WeightedJacobiSmoother(n_sweeps=0)
    with pytest.raises(ValueError):
        RedBlackGaussSeidelSmoother(n_sweeps=0)


# ------------------------------------------------------------- chebyshev
def test_chebyshev_smoother_vcycle_grid_independent():
    from repro.multigrid import ChebyshevSmoother, vcycle_experiment_run

    rels = [vcycle_experiment_run(d, lambda: ChebyshevSmoother(degree=2),
                                  seed=0)
            for d in (15, 31, 63)]
    assert max(rels) < 1e-2
    assert max(rels) / min(rels) < 10.0


def test_chebyshev_as_solver_with_full_spectrum(poisson_100, rng):
    """With the polynomial covering the whole spectrum and high degree,
    Chebyshev converges as a standalone solver."""
    from repro.multigrid import ChebyshevSmoother

    b = rng.standard_normal(100)
    sm = ChebyshevSmoother(degree=120, eig_ratio=5000.0)
    x = sm.smooth(poisson_100, np.zeros(100), b)
    rel = np.linalg.norm(b - poisson_100.matvec(x)) / np.linalg.norm(b)
    assert rel < 0.05


def test_chebyshev_caches_eigenvalue_estimate(poisson_100, rng):
    from repro.multigrid import ChebyshevSmoother

    sm = ChebyshevSmoother(degree=2)
    b = rng.standard_normal(100)
    sm.smooth(poisson_100, np.zeros(100), b)
    lmax1 = sm._lmax_cache[id(poisson_100)]
    sm.smooth(poisson_100, np.zeros(100), b)
    assert sm._lmax_cache[id(poisson_100)] == lmax1
    # the estimate brackets the true value (D=I after scaling)
    true_lmax = np.linalg.eigvalsh(poisson_100.to_dense()).max()
    assert true_lmax <= lmax1 <= 1.35 * true_lmax


def test_chebyshev_validation():
    from repro.multigrid import ChebyshevSmoother

    with pytest.raises(ValueError):
        ChebyshevSmoother(degree=0)
    with pytest.raises(ValueError):
        ChebyshevSmoother(eig_ratio=1.0)


# -------------------------------------------------------- W-cycles / FMG
def test_wcycle_converges_at_least_as_fast_as_vcycle():
    rng = np.random.default_rng(11)
    b = rng.uniform(-1, 1, 31 * 31)
    mgv = MultigridSolver(31, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    mgw = MultigridSolver(31, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    xv = np.zeros(31 * 31)
    xw = np.zeros(31 * 31)
    for _ in range(5):
        xv = mgv.vcycle(xv, b)
        xw = mgw.wcycle(xw, b)
    A = mgv.fine_level.matrix
    rv = np.linalg.norm(b - A.matvec(xv))
    rw = np.linalg.norm(b - A.matvec(xw))
    assert rw <= rv * 1.05


def test_fmg_beats_single_vcycle_from_zero():
    rng = np.random.default_rng(12)
    b = rng.uniform(-1, 1, 63 * 63)
    mg = MultigridSolver(63, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    x_fmg = mg.fmg(b)
    x_v = mg.vcycle(np.zeros(63 * 63), b)
    A = mg.fine_level.matrix
    r_fmg = np.linalg.norm(b - A.matvec(x_fmg))
    r_v = np.linalg.norm(b - A.matvec(x_v))
    assert r_fmg < r_v


def test_fmg_reaches_good_accuracy_in_one_pass():
    rng = np.random.default_rng(13)
    b = rng.uniform(-1, 1, 31 * 31)
    mg = MultigridSolver(31, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    x = mg.fmg(b)
    A = mg.fine_level.matrix
    rel = np.linalg.norm(b - A.matvec(x)) / np.linalg.norm(b)
    # one FMG pass with a single V-cycle per level lands around 1e-1
    # relative algebraic residual (discretisation-accuracy territory)
    assert rel < 0.15
