"""Property-based tests (hypothesis) for the sparse containers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparsela import COOMatrix, CSRMatrix


def sparse_dense(max_dim: int = 12):
    """Strategy: a random small dense matrix with many zeros."""
    dims = st.tuples(st.integers(1, max_dim), st.integers(1, max_dim))
    return dims.flatmap(lambda mn: hnp.arrays(
        np.float64, mn,
        elements=st.one_of(st.just(0.0),
                           st.floats(-10, 10, allow_nan=False))))


@given(sparse_dense())
@settings(max_examples=60, deadline=None)
def test_dense_roundtrip(dense):
    A = CSRMatrix.from_dense(dense)
    assert np.array_equal(A.to_dense(), dense)


@given(sparse_dense(), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_matvec_matches_dense(dense, seed):
    A = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed).standard_normal(dense.shape[1])
    assert np.allclose(A.matvec(x), dense @ x, atol=1e-9)


@given(sparse_dense())
@settings(max_examples=60, deadline=None)
def test_transpose_involution_and_dense(dense):
    A = CSRMatrix.from_dense(dense)
    At = A.transpose()
    assert np.array_equal(At.to_dense(), dense.T)
    assert At.transpose() == A


@given(sparse_dense(), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_extract_block_matches_numpy(dense, seed):
    rng = np.random.default_rng(seed)
    m, n = dense.shape
    rows = rng.choice(m, size=rng.integers(1, m + 1), replace=False)
    cols = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
    A = CSRMatrix.from_dense(dense)
    blk = A.extract_block(rows, cols)
    assert np.array_equal(blk.to_dense(), dense[np.ix_(rows, cols)])


@given(sparse_dense(max_dim=10), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_symmetric_permute(dense, seed):
    n = min(dense.shape)
    square = dense[:n, :n]
    A = CSRMatrix.from_dense(square)
    perm = np.random.default_rng(seed).permutation(n)
    assert np.array_equal(A.permute(perm).to_dense(),
                          square[np.ix_(perm, perm)])


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                          st.floats(-5, 5, allow_nan=False)),
                min_size=0, max_size=60))
@settings(max_examples=60, deadline=None)
def test_coo_duplicate_sum_is_dense_sum(triplets):
    rows = np.array([t[0] for t in triplets], dtype=np.int64)
    cols = np.array([t[1] for t in triplets], dtype=np.int64)
    vals = np.array([t[2] for t in triplets])
    m = COOMatrix(rows, cols, vals, (8, 8))
    expected = np.zeros((8, 8))
    for r, c, v in triplets:
        expected[r, c] += v
    assert np.allclose(m.to_csr().to_dense(), expected, atol=1e-12)


@given(sparse_dense())
@settings(max_examples=40, deadline=None)
def test_triangles_partition_the_matrix(dense):
    A = CSRMatrix.from_dense(dense)
    low = A.lower_triangle(include_diagonal=True)
    up = A.upper_triangle(include_diagonal=False)
    assert np.array_equal(low.to_dense() + up.to_dense(), dense)


@given(sparse_dense(), st.floats(-3, 3, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_scale_linearity(dense, alpha):
    A = CSRMatrix.from_dense(dense)
    assert np.allclose(A.scale(alpha).to_dense(), alpha * dense)
