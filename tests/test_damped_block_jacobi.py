"""Tests for damped Block Jacobi (the Baker-et-al. mitigation)."""

import numpy as np
import pytest

from repro.core.blockdata import build_block_system
from repro.matrices.suite import load_problem
from repro.partition import partition
from repro.solvers.block_jacobi import BlockJacobi


@pytest.fixture(scope="module")
def hard_setup():
    """A hard suite member in the Block-Jacobi-divergent regime."""
    prob = load_problem("bone010", size_scale=0.5)
    part = partition(prob.matrix, 128, seed=0)
    system = build_block_system(prob.matrix, part)
    x0, b = prob.initial_state(seed=0)
    return prob.matrix, system, x0, b


def test_undamped_diverges_damped_converges(hard_setup):
    """The headline: omega=1 diverges where omega=0.5 converges — the
    classic trade a user must tune, which Distributed Southwell avoids."""
    A, system, x0, b = hard_setup
    plain = BlockJacobi(system)
    h1 = plain.run(x0, b, max_steps=50)
    damped = BlockJacobi(system, omega=0.5)
    h2 = damped.run(x0, b, max_steps=50)
    assert h1.final_norm > 1.0          # diverged
    assert h2.final_norm < 0.1          # rescued


def test_damping_slows_convergence_where_plain_works(poisson_100):
    rng = np.random.default_rng(0)
    x0 = rng.uniform(-1, 1, 100)
    b = np.zeros(100)
    x0 /= np.linalg.norm(poisson_100.matvec(x0))
    part = partition(poisson_100, 4, seed=0)
    system = build_block_system(poisson_100, part)
    plain = BlockJacobi(system).run(x0, b, max_steps=20)
    damped = BlockJacobi(system, omega=0.6).run(x0, b, max_steps=20)
    assert plain.final_norm < damped.final_norm


def test_damped_residual_bookkeeping_exact(hard_setup):
    A, system, x0, b = hard_setup
    bj = BlockJacobi(system, omega=0.7)
    bj.run(x0, b, max_steps=10)
    r_true = b - A.matvec(bj.solution())
    assert np.allclose(bj.residual_vector(), r_true, atol=1e-10)


def test_omega_validation(hard_setup):
    _, system, _, _ = hard_setup
    with pytest.raises(ValueError):
        BlockJacobi(system, omega=0.0)
    with pytest.raises(ValueError):
        BlockJacobi(system, omega=1.5)


def test_omega_one_is_plain(poisson_100):
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1, 1, 100)
    b = np.zeros(100)
    part = partition(poisson_100, 4, seed=0)
    system = build_block_system(poisson_100, part)
    a = BlockJacobi(system).run(x0, b, max_steps=8)
    c = BlockJacobi(system, omega=1.0).run(x0, b, max_steps=8)
    assert a.residual_norms == c.residual_norms
