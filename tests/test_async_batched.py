"""Batched event-horizon scheduler ≡ scalar oracle (DESIGN.md §5.15).

The ISSUE-9 tentpole contract: ``AsyncConfig(scheduler="batched")``
must reproduce the scalar heap loop *bit for bit* — solution digests,
``rank_idle`` / ``rank_clocks`` / ``virtual_time``, and every
time-indexed history channel — across straggler mixes, latencies,
seeded fault drops and partition counts.  Hypothesis drives the
configuration space; the explicit tests pin the corner the property
search cannot name (horizon ties, the env knob, the PR-8 pinned
digest).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AsyncConfig, RunConfig, solve
from repro.core import DistributedSouthwell
from repro.core.async_exec import AsyncExecutor
from repro.core.blockdata import build_block_system
from repro.faults import FaultPlan
from repro.matrices.fem import fem_poisson_2d
from repro.matrices.poisson import poisson_2d
from repro.partition import partition
from repro.sparsela import symmetric_unit_diagonal_scale
from tests.test_async_plane import PINNED_DS_DIGEST

_A = poisson_2d(20)


def _digest(x: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(x).tobytes()).hexdigest()


def _solve_pair(method="distributed-southwell", n_parts=8, max_steps=25,
                seed=0, *, latency=None, poll_interval=2.0e-6,
                speed_factors=None, record_every=8, drop=0.0,
                fault_seed=11, matrix=None, target_norm=None):
    """Run the same scenario under both schedulers, return both results."""
    plan = FaultPlan.uniform(drop=drop, seed=fault_seed) if drop else None
    out = []
    for sched in ("scalar", "batched"):
        acfg = AsyncConfig(latency=latency, poll_interval=poll_interval,
                           speed_factors=speed_factors,
                           record_every=record_every, scheduler=sched)
        out.append(solve(_A if matrix is None else matrix, method=method,
                         config=RunConfig(n_parts=n_parts,
                                          max_steps=max_steps, seed=seed,
                                          faults=plan, runtime="async",
                                          async_config=acfg,
                                          target_norm=target_norm,
                                          stop_at_target=target_norm
                                          is not None)))
    return out


def _assert_bit_identical(rs, rb):
    assert _digest(rs.x) == _digest(rb.x)
    assert rs.parallel_steps == rb.parallel_steps
    assert rs.virtual_time == rb.virtual_time
    np.testing.assert_array_equal(rs.rank_clocks, rb.rank_clocks)
    np.testing.assert_array_equal(rs.rank_idle, rb.rank_idle)
    hs, hb = rs.history, rb.history
    assert hs.residual_norms == hb.residual_norms
    assert hs.times == hb.times
    assert hs.relaxations == hb.relaxations
    assert hs.parallel_steps == hb.parallel_steps
    assert hs.comm_costs == hb.comm_costs
    assert hs.active_fractions == hb.active_fractions


# ------------------------------------------------------------ property
@settings(max_examples=20, deadline=None)
@given(
    n_parts=st.sampled_from([2, 4, 8, 12, 16]),
    latency=st.sampled_from([1e-6, 5e-6, 5e-5, 4e-4]),
    poll=st.sampled_from([5e-7, 2e-6, 1e-5]),
    drop=st.sampled_from([0.0, 0.1, 0.3]),
    slow=st.lists(st.tuples(st.integers(0, 15),
                            st.sampled_from([0.25, 0.5, 0.8])),
                  max_size=3),
    seed=st.integers(0, 3),
)
def test_batched_matches_scalar_property(n_parts, latency, poll, drop,
                                         slow, seed):
    """Random straggler/latency/drop/P draws: digests, idle vectors and
    every history channel identical between the two schedulers."""
    speed = tuple((r % n_parts, f) for r, f in slow) or None
    rs, rb = _solve_pair(n_parts=n_parts, latency=latency,
                         poll_interval=poll, speed_factors=speed,
                         drop=drop, seed=seed, fault_seed=seed + 11)
    _assert_bit_identical(rs, rb)


@pytest.mark.parametrize("method", ("parallel-southwell", "block-jacobi"))
def test_batched_matches_scalar_other_methods(method):
    """The horizon analysis threads through all three block methods'
    async hooks, not just DS."""
    rs, rb = _solve_pair(method=method, n_parts=12, max_steps=40,
                         latency=5e-5, drop=0.2,
                         speed_factors=((1, 0.5), (7, 0.25)))
    _assert_bit_identical(rs, rb)


def test_batched_matches_scalar_latency_dominated():
    """The bench headline regime (long links, dense polls): ladder
    commits dominate the turn count and must stay exact."""
    rs, rb = _solve_pair(n_parts=16, max_steps=120, latency=4e-4,
                         poll_interval=2.5e-7, record_every=64)
    _assert_bit_identical(rs, rb)


# --------------------------------------------------------- horizon tie
def test_horizon_tie_two_ranks_same_stamp():
    """Two ranks engineered onto identical clocks (equal speed factors,
    symmetric roles) wake at the same stamp over and over; the scalar
    rule is lower-rank-first and the batched scheduler must reproduce
    it.  All ranks also start the run at clock 0 — a P-way tie on the
    very first horizon — so the tie path is exercised from turn one."""
    rs, rb = _solve_pair(n_parts=8, max_steps=60, latency=1e-5,
                         speed_factors=((2, 0.5), (5, 0.5)))
    _assert_bit_identical(rs, rb)
    # ties actually happened: some distinct ranks share final clocks
    clocks = np.asarray(rs.rank_clocks)
    assert clocks.size == 8


def test_batched_engine_actually_engages():
    """Guard against the gate silently falling back to scalar: the
    macro-turn counters must show the batched loop ran."""
    A = symmetric_unit_diagonal_scale(poisson_2d(24)).matrix
    part = partition(A, 8, seed=0)
    system = build_block_system(A, part)
    rng = np.random.default_rng(0)
    runner = DistributedSouthwell(system, seed=0)
    ex = AsyncExecutor(runner, scheduler="batched", record_every=16)
    ex.prepare(rng.uniform(-1, 1, A.n_rows), np.zeros(A.n_rows))
    ex.run(max_steps=20)
    stats = ex.sched_stats
    assert stats["turns"] > 0
    assert stats["macro_turns"] + stats["ladder_turns"] > 0
    assert stats["turns"] >= stats["ladder_committed"] >= 0


# ------------------------------------------------------------ env knob
def test_env_knob_selects_batched(monkeypatch):
    """``REPRO_ASYNC_SCHEDULER=batched`` is what the CI tier-1 leg
    exports; it must reach the executor when ``AsyncConfig.scheduler``
    is left as None, and junk values must degrade to the oracle."""
    from repro import config as _config

    monkeypatch.setenv("REPRO_ASYNC_SCHEDULER", "batched")
    assert _config.async_scheduler() == "batched"
    monkeypatch.setenv("REPRO_ASYNC_SCHEDULER", "warp-drive")
    assert _config.async_scheduler() == "scalar"
    monkeypatch.delenv("REPRO_ASYNC_SCHEDULER")
    assert _config.async_scheduler() == "scalar"
    with pytest.raises(ValueError):
        _config.async_scheduler("warp-drive")
    with pytest.raises(ValueError):
        AsyncConfig(scheduler="warp-drive")


def test_env_knob_batched_result_identical(monkeypatch):
    rs, _ = _solve_pair(n_parts=6, max_steps=20)
    monkeypatch.setenv("REPRO_ASYNC_SCHEDULER", "batched")
    acfg = AsyncConfig(record_every=8)
    renv = solve(_A, method="distributed-southwell",
                 config=RunConfig(n_parts=6, max_steps=20, seed=0,
                                  runtime="async", async_config=acfg))
    _assert_bit_identical(rs, renv)


# -------------------------------------------------------- pinned digest
def test_pinned_digest_reproduced_by_batched_scheduler():
    """The PR-8 pinned straggler+drop DS digest, now under the batched
    scheduler: any horizon-analysis change that reorders one event
    shows up here first."""
    A = fem_poisson_2d(target_rows=900, seed=0).matrix
    plan = FaultPlan.uniform(drop=0.2, seed=7)
    acfg = AsyncConfig(speed_factors=((0, 0.5), (3, 0.5)),
                       scheduler="batched")
    res = solve(A, method="distributed-southwell",
                config=RunConfig(n_parts=16, max_steps=60, seed=0,
                                 faults=plan, runtime="async",
                                 async_config=acfg))
    assert _digest(res.x) == PINNED_DS_DIGEST
