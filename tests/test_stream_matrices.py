"""Streamed matrix generation is bit-identical to the seed generators.

The chunked builders (``repro.matrices.stream``, DESIGN.md §5.13) are
pure memory optimizations: for every generator and every chunk size the
CSR ``indptr``/``indices``/``data`` bytes — hence the sha256 the setup
cache keys on — must match the seed whole-COO assembly exactly.
"""

import hashlib

import numpy as np
import pytest

from repro.matrices.fem import _element_ke, assemble_p1_stiffness, triangular_mesh
from repro.matrices.poisson import _grid2d_entries
from repro.matrices.random_spd import random_sparse_spd
from repro.matrices.stream import (
    grid2d_stream,
    random_sparse_spd_streamed,
    stream_coo_to_csr,
)
from repro.sparsela import COOMatrix


def csr_sha256(A) -> str:
    h = hashlib.sha256()
    for arr in (A.indptr, A.indices, A.data):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def assert_bit_identical(a, b):
    assert a.shape == b.shape
    assert a.indptr.dtype == b.indptr.dtype
    assert a.indices.dtype == b.indices.dtype
    assert csr_sha256(a) == csr_sha256(b)


UNIT = staticmethod(lambda i, j: (np.ones(i.shape), np.ones(i.shape)))


@pytest.mark.parametrize("nx,ny", [(1, 5), (5, 1), (2, 2), (3, 7),
                                   (17, 13), (48, 48), (101, 37)])
@pytest.mark.parametrize("block_rows", [1, 3, None])
def test_grid2d_stream_unit_coeff(nx, ny, block_rows):
    ref = _grid2d_entries(nx, ny, lambda i, j: (np.ones(i.shape),
                                                np.ones(i.shape)))
    got = grid2d_stream(nx, ny, lambda i, j: (np.ones(i.shape),
                                              np.ones(i.shape)),
                        block_rows=block_rows)
    assert_bit_identical(ref, got)


@pytest.mark.parametrize("seed", [0, 3])
def test_grid2d_stream_variable_coeff(seed):
    rng = np.random.default_rng(seed)
    field = np.exp(rng.standard_normal((23, 31)))

    def coeff(i, j):
        return field, 2.0 * field

    ref = _grid2d_entries(31, 23, coeff)
    got = grid2d_stream(31, 23, coeff, block_rows=4)
    assert_bit_identical(ref, got)


def _seed_fem_assemble(mesh, tensor=None):
    """The pre-stream whole-COO assembly, kept here as the reference."""
    pts, tris = mesh.points, mesh.triangles
    K = None if tensor is None else np.asarray(tensor, dtype=np.float64)
    ke = _element_ke(pts[tris], K)
    rows = np.repeat(tris, 3, axis=1).ravel()
    cols = np.tile(tris, (1, 3)).ravel()
    vals = ke.transpose(0, 2, 1).ravel()
    n_pts = pts.shape[0]
    full = COOMatrix(rows, cols, vals, (n_pts, n_pts)).to_csr()
    interior = np.flatnonzero(~mesh.boundary)
    return full.extract_block(interior, interior)


@pytest.mark.parametrize("grid,seed", [(9, 0), (20, 1), (41, 5)])
@pytest.mark.parametrize("tri_block", [1, 13, 10**9])
def test_fem_assembly_chunked(grid, seed, tri_block):
    mesh = triangular_mesh(grid, seed=seed)
    assert_bit_identical(_seed_fem_assemble(mesh),
                         assemble_p1_stiffness(mesh, tri_block=tri_block))


def test_fem_assembly_chunked_tensor():
    from repro.matrices.fem import rotation_tensor

    mesh = triangular_mesh(17, seed=2)
    t = rotation_tensor(1e-3, np.pi / 6)
    assert_bit_identical(_seed_fem_assemble(mesh, t),
                         assemble_p1_stiffness(mesh, tensor=t, tri_block=7))


@pytest.mark.parametrize("n,density,seed", [(64, 0.05, 0), (130, 0.02, 3),
                                            (257, 0.01, 7)])
def test_random_sparse_spd_streamed(n, density, seed):
    ref = random_sparse_spd(n, density=density, seed=seed)
    got = random_sparse_spd_streamed(n, density=density, seed=seed,
                                     row_block=37)
    assert_bit_identical(ref, got)


def test_stream_coo_duplicate_fold_matches_seed():
    # adversarial duplicates: many triplets landing on few keys, split at
    # every possible chunk boundary — the reduction must not reassociate
    rng = np.random.default_rng(11)
    rows = rng.integers(0, 5, 300)
    cols = rng.integers(0, 5, 300)
    vals = rng.standard_normal(300)
    ref = COOMatrix(rows, cols, vals, (5, 5)).to_csr()
    for n_chunks in (1, 2, 7, 300):
        bounds = np.linspace(0, 300, n_chunks + 1).astype(int)
        got = stream_coo_to_csr(
            ((rows[lo:hi], cols[lo:hi], vals[lo:hi])
             for lo, hi in zip(bounds[:-1], bounds[1:])), (5, 5))
        assert_bit_identical(ref, got)


def test_stream_coo_empty():
    out = stream_coo_to_csr(iter(()), (4, 4))
    assert out.indptr.tolist() == [0, 0, 0, 0, 0]
    assert out.indices.size == 0
