"""Small-scale smoke tests of every experiment driver.

Each driver is exercised at the "small" scale to confirm it runs end to
end and emits the structure the benches rely on.  Shape assertions on the
paper's claims live in the benches (which run at the full default scale);
here only the cheap, always-true structural properties are asserted.
"""

import numpy as np
import pytest

from repro.experiments import (
    METHODS,
    get_scale,
    run_fig2,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

SMALL = get_scale("small")
NAMES = ("msdoor", "af_5_k101")


def test_get_scale_validation():
    with pytest.raises(KeyError):
        get_scale("huge")
    assert get_scale("paper").n_procs == 256


def test_fig2_histories():
    out = run_fig2(fem_rows=SMALL.fem_rows, n_sweeps=2, seed=0)
    assert set(out) == {"GS", "SW", "Par SW", "MC GS", "Jacobi"}
    for hist in out.values():
        assert hist.residual_norms[-1] < hist.residual_norms[0]
        assert hist.relaxations[-1] >= 2 * SMALL.fem_rows - 1


def test_fig5_histories():
    out = run_fig5(fem_rows=SMALL.fem_rows, n_sweeps=2, seed=0)
    assert set(out) == {"SW", "Par SW", "MC GS", "Dist SW"}
    assert out["Dist SW"].residual_norms[-1] < 1.0


def test_fig6_rows():
    rows = run_fig6(grid_dims=(15, 31), n_cycles=5, seed=0)
    assert len(rows) == 2
    for row in rows:
        assert row["GS, 1 sweep"] < 1e-3
        assert row["Dist SW, 1 sweep"] < 1e-3
        assert row["Dist SW, 1/2 sweep"] < 1e-2


def test_table1_rows():
    rows = run_table1(size_scale=SMALL.size_scale)
    assert len(rows) == 14
    assert all(r["analog_equations"] > 0 for r in rows)
    # paper ordering: descending nonzeros
    nnzs = [r["paper_nonzeros"] for r in rows]
    assert nnzs == sorted(nnzs, reverse=True)


def test_table2_structure():
    rows = run_table2(n_procs=SMALL.n_procs, size_scale=SMALL.size_scale,
                      max_steps=SMALL.max_steps, names=NAMES)
    assert [r["matrix"] for r in rows] == list(NAMES)
    for row in rows:
        for label in ("BJ", "PS", "DS"):
            assert f"time_{label}" in row
            assert f"comm_{label}" in row
            assert f"steps_{label}" in row
            assert f"relax_per_n_{label}" in row
            assert f"active_{label}" in row
        # whatever reached has consistent data types
        for key, val in row.items():
            if key != "matrix" and val is not None:
                assert val >= 0.0


def test_table3_structure():
    rows = run_table3(n_procs=SMALL.n_procs, size_scale=SMALL.size_scale,
                      max_steps=SMALL.max_steps, names=NAMES)
    for row in rows:
        assert row["solve_comm_PS"] > 0
        assert row["solve_comm_DS"] > 0
        assert row["res_comm_DS"] >= 0


def test_table4_structure():
    rows = run_table4(n_procs=SMALL.n_procs, size_scale=SMALL.size_scale,
                      max_steps=SMALL.max_steps, names=NAMES)
    for row in rows:
        for label in ("BJ", "PS", "DS"):
            assert row[f"time_{label}"] > 0
            assert row[f"comm_{label}"] > 0


def test_fig7_series():
    out = run_fig7(n_procs=SMALL.n_procs, size_scale=SMALL.size_scale,
                   max_steps=SMALL.max_steps, names=("af_5_k101",))
    series = out["af_5_k101"]
    assert set(series) == set(METHODS)
    for cols in series.values():
        assert len(cols["residual_norms"]) == SMALL.max_steps + 1
        assert np.all(np.diff(cols["comm_costs"]) >= 0)
        assert np.all(np.diff(cols["times"]) >= 0)


def test_fig8_rows():
    rows = run_fig8(proc_sweep=(4, 8), size_scale=SMALL.size_scale,
                    max_steps=SMALL.max_steps, names=("af_5_k101",))
    assert len(rows) == 2
    assert {r["P"] for r in rows} == {4, 8}
    assert all("time_DS" in r for r in rows)


def test_fig9_rows():
    rows = run_fig9(proc_sweep=(4, 8), size_scale=SMALL.size_scale,
                    max_steps=SMALL.max_steps, names=("af_5_k101",))
    for row in rows:
        for label in ("BJ", "PS", "DS"):
            assert row[f"norm_{label}"] > 0


def test_runs_are_cached():
    """suite_runs reuses cached results — second call is near-free."""
    import time

    from repro.experiments.runners import run_method

    t0 = time.perf_counter()
    run_method("af_5_k101", "distributed-southwell", SMALL.n_procs,
               SMALL.size_scale, SMALL.max_steps, 0)
    first = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_method("af_5_k101", "distributed-southwell", SMALL.n_procs,
               SMALL.size_scale, SMALL.max_steps, 0)
    second = time.perf_counter() - t0
    assert second < first / 5 + 1e-3
