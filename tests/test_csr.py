"""Unit tests for the CSR matrix container."""

import numpy as np
import pytest

from repro.sparsela import CSRMatrix


def test_roundtrip_dense(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    assert np.allclose(A.to_dense(), small_dense)


def test_matvec_matches_dense(small_dense, rng):
    A = CSRMatrix.from_dense(small_dense)
    x = rng.standard_normal(25)
    assert np.allclose(A.matvec(x), small_dense @ x)
    assert np.allclose(A @ x, small_dense @ x)


def test_matvec_out_parameter(small_dense, rng):
    A = CSRMatrix.from_dense(small_dense)
    x = rng.standard_normal(25)
    out = np.empty(25)
    y = A.matvec(x, out=out)
    assert y is out
    assert np.allclose(out, small_dense @ x)


def test_matvec_shape_check(small_csr):
    with pytest.raises(ValueError):
        small_csr.matvec(np.zeros(7))


def test_rmatvec(small_dense, rng):
    A = CSRMatrix.from_dense(small_dense)
    y = rng.standard_normal(25)
    assert np.allclose(A.rmatvec(y), small_dense.T @ y)


def test_transpose(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    assert np.allclose(A.transpose().to_dense(), small_dense.T)


def test_transpose_involution(small_csr):
    assert small_csr.transpose().transpose() == small_csr


def test_diagonal(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    assert np.allclose(A.diagonal(), np.diag(small_dense))


def test_identity_and_diagonal_matrix():
    eye = CSRMatrix.identity(4, scale=2.5)
    assert np.allclose(eye.to_dense(), 2.5 * np.eye(4))
    d = CSRMatrix.diagonal_matrix(np.array([1.0, -2.0, 0.5]))
    assert np.allclose(d.to_dense(), np.diag([1.0, -2.0, 0.5]))


def test_extract_rows(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    rows = [7, 2, 2, 19]
    sub = A.extract_rows(rows)
    assert np.allclose(sub.to_dense(), small_dense[rows])


def test_extract_rows_empty_rows():
    d = np.zeros((4, 4))
    d[1, 2] = 3.0
    A = CSRMatrix.from_dense(d)
    sub = A.extract_rows([0, 1, 3])
    assert np.allclose(sub.to_dense(), d[[0, 1, 3]])


def test_extract_block(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    rows = [3, 1, 10]
    cols = [0, 5, 6, 20]
    blk = A.extract_block(rows, cols)
    assert np.allclose(blk.to_dense(), small_dense[np.ix_(rows, cols)])


def test_permute(small_dense, rng):
    n = small_dense.shape[0]
    A = CSRMatrix.from_dense(small_dense)
    perm = rng.permutation(n)
    assert np.allclose(A.permute(perm).to_dense(),
                       small_dense[np.ix_(perm, perm)])


def test_permute_rejects_non_permutation(small_csr):
    with pytest.raises(ValueError):
        small_csr.permute(np.zeros(25, dtype=int))


def test_add_and_scale(small_dense, rng):
    other = rng.standard_normal((25, 25))
    other[rng.random((25, 25)) > 0.2] = 0.0
    A = CSRMatrix.from_dense(small_dense)
    B = CSRMatrix.from_dense(other)
    assert np.allclose(A.add(B).to_dense(), small_dense + other)
    assert np.allclose(A.scale(-2.0).to_dense(), -2.0 * small_dense)


def test_triangles(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    assert np.allclose(A.lower_triangle(True).to_dense(),
                       np.tril(small_dense))
    assert np.allclose(A.lower_triangle(False).to_dense(),
                       np.tril(small_dense, -1))
    assert np.allclose(A.upper_triangle(True).to_dense(),
                       np.triu(small_dense))
    assert np.allclose(A.upper_triangle(False).to_dense(),
                       np.triu(small_dense, 1))


def test_prune():
    d = np.array([[1.0, 1e-12], [0.5, 0.0]])
    A = CSRMatrix.from_dense(d)
    pruned = A.prune(1e-10)
    assert pruned.nnz == 2
    assert np.allclose(pruned.to_dense(), [[1.0, 0.0], [0.5, 0.0]])


def test_norms(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    assert np.isclose(A.frobenius_norm(),
                      np.linalg.norm(small_dense, "fro"))
    assert np.isclose(A.inf_norm(),
                      np.abs(small_dense).sum(axis=1).max())


def test_is_symmetric(poisson_100, small_csr):
    assert poisson_100.is_symmetric()
    assert not small_csr.is_symmetric()


def test_from_scipy_roundtrip(small_dense):
    import scipy.sparse as sp

    A = CSRMatrix.from_scipy(sp.csr_matrix(small_dense))
    assert np.allclose(A.to_dense(), small_dense)
    back = A.to_scipy()
    assert np.allclose(back.toarray(), small_dense)


def test_validation_rejects_inconsistent_indptr():
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (1, 1))
    with pytest.raises(ValueError):
        CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 2))


def test_unhashable(small_csr):
    with pytest.raises(TypeError):
        hash(small_csr)


def test_row_view(small_dense):
    A = CSRMatrix.from_dense(small_dense)
    cols, vals = A.row(3)
    dense_row = small_dense[3]
    assert np.allclose(vals, dense_row[dense_row != 0.0])


def test_empty_matrix():
    A = CSRMatrix(np.zeros(4, dtype=int), np.zeros(0, dtype=int),
                  np.zeros(0), (3, 3))
    assert A.nnz == 0
    assert np.allclose(A.matvec(np.ones(3)), 0.0)
    assert A.inf_norm() == 0.0
