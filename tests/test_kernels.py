"""Tests for the relaxation kernels (reference vs fast paths)."""

import numpy as np
import pytest

from repro.sparsela import CSRMatrix, gauss_seidel_sweep, jacobi_sweep
from repro.sparsela.kernels import (
    gauss_seidel_sweep_reference,
    lower_triangular_solve,
    residual,
    sor_sweep,
)


def test_residual(poisson_100, rng):
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    r = residual(poisson_100, x, b)
    assert np.allclose(r, b - poisson_100.to_dense() @ x)


def test_jacobi_sweep_matches_formula(poisson_100, rng):
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    out = jacobi_sweep(poisson_100, x, b)
    d = poisson_100.diagonal()
    expected = x + (b - poisson_100.to_dense() @ x) / d
    assert np.allclose(out, expected)


def test_jacobi_rejects_zero_diagonal():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 2.0]]))
    with pytest.raises(ZeroDivisionError):
        jacobi_sweep(A, np.zeros(2), np.ones(2))


def test_lower_triangular_solve_reference(rng):
    L = np.tril(rng.standard_normal((10, 10)))
    np.fill_diagonal(L, np.abs(np.diag(L)) + 1.0)
    b = rng.standard_normal(10)
    y = lower_triangular_solve(CSRMatrix.from_dense(L), b)
    assert np.allclose(y, np.linalg.solve(L, b))


def test_lower_triangular_solve_rejects_upper_entries():
    A = CSRMatrix.from_dense(np.array([[1.0, 0.5], [0.0, 1.0]]))
    with pytest.raises(ValueError):
        lower_triangular_solve(A, np.ones(2))


def test_gs_fast_equals_reference(poisson_100, rng):
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    ref = gauss_seidel_sweep_reference(poisson_100, x, b)
    fast = gauss_seidel_sweep(poisson_100, x, b)
    assert np.allclose(ref, fast, atol=1e-12)


def test_gs_fast_equals_reference_fem(fem_300, rng):
    n = fem_300.n_rows
    x = rng.standard_normal(n)
    b = rng.standard_normal(n)
    ref = gauss_seidel_sweep_reference(fem_300, x, b)
    fast = gauss_seidel_sweep(fem_300, x, b)
    assert np.allclose(ref, fast, atol=1e-12)


def test_gs_with_precomputed_residual(poisson_100, rng):
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    r = residual(poisson_100, x, b)
    assert np.allclose(gauss_seidel_sweep(poisson_100, x, b, r=r),
                       gauss_seidel_sweep(poisson_100, x, b))


def test_gs_reduces_energy_norm(poisson_100, rng):
    """GS is a descent method in the A-norm for SPD systems."""
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    dense = poisson_100.to_dense()
    x_star = np.linalg.solve(dense, b)

    def energy(v):
        e = v - x_star
        return e @ dense @ e

    x1 = gauss_seidel_sweep(poisson_100, x, b)
    assert energy(x1) < energy(x)


def test_gs_fixed_point_is_solution(poisson_100):
    b = np.ones(100)
    x_star = np.linalg.solve(poisson_100.to_dense(), b)
    out = gauss_seidel_sweep(poisson_100, x_star, b)
    assert np.allclose(out, x_star, atol=1e-10)


def test_sor_omega_one_is_gs(poisson_100, rng):
    x = rng.standard_normal(100)
    b = rng.standard_normal(100)
    assert np.allclose(sor_sweep(poisson_100, x, b, omega=1.0),
                       gauss_seidel_sweep(poisson_100, x, b), atol=1e-10)


def test_sor_rejects_bad_omega(poisson_100):
    with pytest.raises(ValueError):
        sor_sweep(poisson_100, np.zeros(100), np.ones(100), omega=2.5)


def test_sor_converges_faster_than_gs_for_good_omega(poisson_100):
    """On the model Poisson problem, SOR with near-optimal omega beats GS."""
    rng = np.random.default_rng(0)
    b = rng.standard_normal(100)
    x_gs = np.zeros(100)
    x_sor = np.zeros(100)
    omega = 2.0 / (1.0 + np.sin(np.pi / 11))     # optimal for 10x10 grid
    for _ in range(20):
        x_gs = gauss_seidel_sweep(poisson_100, x_gs, b)
        x_sor = sor_sweep(poisson_100, x_sor, b, omega=omega)
    r_gs = np.linalg.norm(residual(poisson_100, x_gs, b))
    r_sor = np.linalg.norm(residual(poisson_100, x_sor, b))
    assert r_sor < r_gs
