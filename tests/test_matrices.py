"""Tests for the problem generators (poisson, fem, elasticity, random, suite)."""

import numpy as np
import pytest

from repro.matrices import (
    Problem,
    SUITE_NAMES,
    elasticity_fem_2d,
    fem_poisson_2d,
    load_problem,
    load_suite,
    poisson_1d,
    poisson_2d,
    poisson_2d_anisotropic,
    poisson_2d_jump,
    poisson_2d_ninepoint,
    poisson_3d,
    poisson_3d_27point,
    random_sparse_spd,
    random_spd,
    suite_table,
    triangular_mesh,
)
from repro.matrices.fem import (
    assemble_p1_stiffness,
    fem_rotated_anisotropic,
    rotation_tensor,
)


def _assert_spd(A, tol=1e-10):
    d = A.to_dense()
    assert np.allclose(d, d.T, atol=1e-10), "not symmetric"
    assert np.linalg.eigvalsh(0.5 * (d + d.T)).min() > tol, "not PD"


# ---------------------------------------------------------------- poisson
def test_poisson_1d_structure():
    A = poisson_1d(5).to_dense()
    assert np.allclose(np.diag(A), 2.0)
    assert np.allclose(np.diag(A, 1), -1.0)


def test_poisson_2d_is_spd_with_known_diag():
    A = poisson_2d(7)
    assert np.allclose(A.diagonal(), 4.0)
    _assert_spd(A)


def test_poisson_2d_rectangular():
    A = poisson_2d(4, 6)
    assert A.shape == (24, 24)
    _assert_spd(A)


def test_poisson_2d_matches_kron_formula():
    n = 5
    T = poisson_1d(n).to_dense()
    expected = np.kron(np.eye(n), T) + np.kron(T, np.eye(n))
    assert np.allclose(poisson_2d(n).to_dense(), expected)


def test_poisson_anisotropic_spd_and_limits():
    A = poisson_2d_anisotropic(6, epsilon=1e-2)
    _assert_spd(A)
    iso = poisson_2d_anisotropic(6, epsilon=1.0)
    assert np.allclose(iso.to_dense(), poisson_2d(6).to_dense())
    with pytest.raises(ValueError):
        poisson_2d_anisotropic(6, epsilon=0.0)


def test_poisson_jump_spd_and_contrast():
    A = poisson_2d_jump(8, contrast=1e3, seed=1)
    _assert_spd(A)
    diag = A.diagonal()
    assert diag.max() / diag.min() > 50.0   # the contrast shows up


def test_poisson_ninepoint_spd():
    A = poisson_2d_ninepoint(6)
    _assert_spd(A)
    # interior rows have 8 neighbors
    assert A.row_counts().max() == 9


def test_poisson_3d_spd():
    A = poisson_3d(4)
    assert A.shape == (64, 64)
    assert np.allclose(A.diagonal(), 6.0)
    _assert_spd(A)


def test_poisson_3d_27pt_spd_and_connectivity():
    A = poisson_3d_27point(4)
    _assert_spd(A, tol=1e-8)
    assert A.row_counts().max() == 27


# -------------------------------------------------------------------- fem
def test_triangular_mesh_covers_square():
    mesh = triangular_mesh(8, seed=0)
    assert mesh.points.shape == (64, 2)
    assert mesh.boundary.sum() == 4 * 8 - 4
    assert mesh.triangles.min() >= 0


def test_mesh_drop_interior():
    mesh = triangular_mesh(8, seed=0, drop_interior=5)
    assert mesh.n_interior == 36 - 5


def test_mesh_rejects_overdrop():
    with pytest.raises(ValueError):
        triangular_mesh(4, drop_interior=100)


def test_fem_poisson_exact_row_count_and_spd():
    prob = fem_poisson_2d(target_rows=200, seed=2)
    assert prob.n == 200
    _assert_spd(prob.matrix)
    assert np.allclose(prob.matrix.diagonal(), 1.0)


def test_fem_poisson_default_is_paper_size():
    prob = fem_poisson_2d(seed=0)
    assert prob.n == 3081


def test_p1_stiffness_constant_nullspace_before_bc():
    """Row sums of the unconstrained stiffness are zero (constants in the
    kernel) — checked via a mesh with no boundary elimination."""
    mesh = triangular_mesh(6, seed=1)
    # assemble without elimination by marking nothing as boundary
    from repro.matrices.fem import TriangularMesh

    free = TriangularMesh(points=mesh.points, triangles=mesh.triangles,
                          boundary=np.zeros(mesh.points.shape[0], bool))
    K = assemble_p1_stiffness(free)
    assert np.allclose(K.matvec(np.ones(K.n_rows)), 0.0, atol=1e-10)


def test_rotated_anisotropic_spd_and_non_m_matrix():
    prob = fem_rotated_anisotropic(300, epsilon=1e-3, seed=1)
    _assert_spd(prob.matrix, tol=1e-12)
    # full tensor ⇒ positive off-diagonal entries exist (non-M-matrix)
    d = prob.matrix.to_dense()
    off = d - np.diag(np.diag(d))
    assert off.max() > 0.0


def test_rotation_tensor_spd():
    K = rotation_tensor(1e-2, 0.7)
    assert np.allclose(K, K.T)
    assert np.all(np.linalg.eigvalsh(K) > 0)


# ------------------------------------------------------------- elasticity
def test_elasticity_spd_and_unit_diag():
    prob = elasticity_fem_2d(target_rows=300, nu=0.4, seed=3)
    _assert_spd(prob.matrix, tol=1e-12)
    assert np.allclose(prob.matrix.diagonal(), 1.0)


def test_elasticity_not_diagonally_dominant():
    """The hard-problem property: off-diagonal mass exceeds the diagonal."""
    prob = elasticity_fem_2d(target_rows=400, nu=0.45, seed=2)
    d = prob.matrix.to_dense()
    off_sums = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
    assert np.median(off_sums) > 1.2


def test_elasticity_rejects_bad_nu():
    with pytest.raises(ValueError):
        elasticity_fem_2d(target_rows=100, nu=0.5)


# ----------------------------------------------------------------- random
def test_random_spd_is_spd_with_condition():
    A = random_spd(20, seed=1, condition=50.0)
    d = A.to_dense()
    ev = np.linalg.eigvalsh(d)
    assert ev.min() > 0
    assert np.isclose(ev.max() / ev.min(), 50.0, rtol=0.05)


def test_random_sparse_spd():
    A = random_sparse_spd(50, density=0.05, seed=2)
    _assert_spd(A, tol=1e-12)


# ------------------------------------------------------------------ suite
def test_suite_has_fourteen_members():
    assert len(SUITE_NAMES) == 14


def test_suite_member_loads_and_is_spd():
    prob = load_problem("msdoor", size_scale=0.05)
    assert isinstance(prob, Problem)
    assert prob.meta["analog_of"] == "msdoor"
    assert prob.meta["paper_n"] == 404_785
    _assert_spd(prob.matrix, tol=1e-12)


def test_suite_unknown_name():
    with pytest.raises(KeyError):
        load_problem("not_a_matrix")


def test_suite_table_rows():
    rows = suite_table(size_scale=0.05)
    assert len(rows) == 14
    assert {"matrix", "paper_nonzeros", "paper_equations",
            "analog_nonzeros", "analog_equations"} <= set(rows[0])


def test_load_suite_subset():
    probs = load_suite(size_scale=0.05, names=("af_5_k101", "msdoor"))
    assert [p.name for p in probs] == ["af_5_k101", "msdoor"]


def test_problem_initial_state_conventions(poisson_100):
    prob = Problem(name="t", matrix=poisson_100)
    x0, b = prob.initial_state(seed=1)
    assert np.allclose(b, 0.0)
    assert np.isclose(np.linalg.norm(b - poisson_100.matvec(x0)), 1.0)
    x0z, bz = prob.initial_state(seed=1, x_zeros=True)
    assert np.allclose(x0z, 0.0)
    assert np.isclose(np.linalg.norm(bz), 1.0)
