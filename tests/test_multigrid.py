"""Tests for the geometric multigrid substrate and smoothers."""

import numpy as np
import pytest

from repro.multigrid import (
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    MultigridSolver,
    ParallelSouthwellSmoother,
    bilinear_prolongation,
    build_hierarchy,
    full_weighting,
    valid_grid_dims,
    vcycle_experiment_run,
)
from repro.multigrid.grid import coarse_dim

# MultigridSolver / vcycle_experiment_run are deprecated (one cycle) in
# favour of solve(method="mg"); these tests pin the legacy behaviour
# until removal
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ------------------------------------------------------------------ grid
def test_valid_grid_dims_are_paper_dims():
    assert valid_grid_dims() == [15, 31, 63, 127, 255]


def test_coarse_dim():
    assert coarse_dim(15) == 7
    assert coarse_dim(3) == 1
    with pytest.raises(ValueError):
        coarse_dim(10)


def test_hierarchy_structure():
    levels = build_hierarchy(31)
    assert [lv.n for lv in levels] == [31, 15, 7, 3]
    for lv in levels:
        assert lv.matrix.n_rows == lv.n * lv.n
    with pytest.raises(ValueError):
        build_hierarchy(31, coarsest_dim=2)


def test_hierarchy_operator_scaling():
    levels = build_hierarchy(15)
    # diag = 4 / h^2
    for lv in levels:
        h = 1.0 / (lv.n + 1)
        assert np.allclose(lv.matrix.diagonal(), 4.0 / h ** 2)


# -------------------------------------------------------------- transfer
def test_restriction_of_constant_is_constant():
    n_fine = 7
    fine = np.ones(n_fine * n_fine)
    coarse = full_weighting(fine, n_fine)
    # interior coarse points average a full 3x3 of ones -> exactly 1
    assert coarse.shape == (9,)
    assert np.allclose(coarse.reshape(3, 3)[1, 1], 1.0)


def test_prolongation_of_constant_inside():
    coarse = np.ones(9)
    fine = bilinear_prolongation(coarse, 3).reshape(7, 7)
    # coincident + interior edge points are exactly 1
    assert np.allclose(fine[1::2, 1::2], 1.0)
    assert np.allclose(fine[3, 2], 1.0)


def test_transfer_adjointness():
    """Full weighting and bilinear prolongation satisfy P = 4 R^T:
    ⟨P c, f⟩ = 4 ⟨c, R f⟩ for all c, f."""
    rng = np.random.default_rng(0)
    n_coarse, n_fine = 7, 15
    for _ in range(5):
        c = rng.standard_normal(n_coarse * n_coarse)
        f = rng.standard_normal(n_fine * n_fine)
        lhs = bilinear_prolongation(c, n_coarse) @ f
        rhs = 4.0 * (c @ full_weighting(f, n_fine))
        assert np.isclose(lhs, rhs, rtol=1e-12)


def test_transfer_shape_validation():
    with pytest.raises(ValueError):
        full_weighting(np.zeros(10), 7)
    with pytest.raises(ValueError):
        bilinear_prolongation(np.zeros(10), 7)


# ---------------------------------------------------------------- vcycle
def test_vcycle_converges_fast():
    rng = np.random.default_rng(1)
    mg = MultigridSolver(31, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    b = rng.uniform(-1, 1, 31 * 31)
    hist = mg.solve(b, n_cycles=9)
    assert hist.final_norm / hist.initial_norm < 1e-6
    # roughly constant per-cycle contraction
    rates = np.array(hist.residual_norms[1:]) / np.array(
        hist.residual_norms[:-1])
    assert rates.max() < 0.35


def test_vcycle_solution_is_accurate():
    rng = np.random.default_rng(2)
    mg = MultigridSolver(15, GaussSeidelSmoother(1), GaussSeidelSmoother(1))
    b = rng.uniform(-1, 1, 225)
    mg.solve(b, n_cycles=12)
    A = mg.fine_level.matrix
    x_star = np.linalg.solve(A.to_dense(), b)
    assert np.allclose(mg.x, x_star, atol=1e-8)


def test_grid_independent_convergence_gs():
    rels = [vcycle_experiment_run(d, lambda: GaussSeidelSmoother(1), seed=3)
            for d in (15, 31, 63)]
    assert max(rels) / min(rels) < 25.0     # same order across grids
    assert max(rels) < 1e-6


def test_grid_independent_convergence_ds_smoother():
    rels = [vcycle_experiment_run(
        d, lambda: DistributedSouthwellSmoother(1.0), seed=3)
        for d in (15, 31, 63)]
    assert max(rels) / min(rels) < 25.0
    assert max(rels) < 1e-7


def test_ds_smoother_beats_gs_per_relaxation():
    """The paper's Figure 6 claim at equal relaxation budgets."""
    gs = vcycle_experiment_run(31, lambda: GaussSeidelSmoother(1), seed=0)
    ds = vcycle_experiment_run(
        31, lambda: DistributedSouthwellSmoother(1.0), seed=0)
    assert ds < gs


def test_half_sweep_ds_still_converges():
    rel = vcycle_experiment_run(
        31, lambda: DistributedSouthwellSmoother(0.5), seed=0)
    assert rel < 1e-5


def test_parallel_southwell_smoother_works():
    rel = vcycle_experiment_run(
        31, lambda: ParallelSouthwellSmoother(1.0), seed=0)
    assert rel < 1e-7


# -------------------------------------------------------------- smoothers
def test_gs_smoother_budget_accounting(poisson_100):
    assert GaussSeidelSmoother(2).relaxations(100) == 200
    assert DistributedSouthwellSmoother(0.5).relaxations(100) == 50


def test_smoother_validation():
    with pytest.raises(ValueError):
        GaussSeidelSmoother(0)
    with pytest.raises(ValueError):
        DistributedSouthwellSmoother(0.0)


def test_ds_smoother_spends_exact_budget(poisson_100, rng):
    sm = DistributedSouthwellSmoother(0.5, seed=1)
    b = rng.uniform(-1, 1, 100)
    sm.smooth(poisson_100, np.zeros(100), b)
    solver = sm._solver_for(poisson_100)
    assert solver.total_relaxations == 50
