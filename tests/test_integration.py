"""Cross-subsystem integration tests: whole pipelines end to end."""

import numpy as np
import pytest

from repro.api import solve
from repro.core import DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices import fem_poisson_2d, load_problem
from repro.partition import partition
from repro.sparsela import read_binary, read_matrix_market, write_binary, \
    write_matrix_market


def test_io_partition_solve_pipeline(tmp_path):
    """Generate → write MatrixMarket → read back → partition → solve."""
    prob = fem_poisson_2d(target_rows=400, seed=2)
    path = tmp_path / "m.mtx"
    write_matrix_market(path, prob.matrix)
    A = read_matrix_market(path)
    assert A == prob.matrix
    res = solve(A, method="distributed-southwell", n_parts=8,
                max_steps=30, seed=0)
    assert res.final_norm < 0.05


def test_binary_io_pipeline(tmp_path):
    prob = load_problem("msdoor", size_scale=0.05)
    path = tmp_path / "m.bin"
    write_binary(path, prob.matrix)
    A = read_binary(path)
    res = solve(A, method="parallel-southwell", n_parts=6,
                max_steps=20, seed=0)
    assert res.final_norm < 1.0


def test_multi_sweep_local_solver_improves_per_step(fem_300):
    """Two local GS sweeps per relaxation converge in fewer parallel
    steps than one (at higher per-step flops)."""
    rng = np.random.default_rng(0)
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))
    part = partition(fem_300, 8, seed=0)
    finals = {}
    for sweeps in (1, 2):
        system = build_block_system(fem_300, part, n_sweeps=sweeps)
        ds = DistributedSouthwell(system)
        hist = ds.run(x0, b, max_steps=20)
        # bookkeeping stays exact with multi-sweep local solves
        r_true = b - fem_300.matvec(ds.solution())
        assert np.allclose(ds.residual_vector(), r_true, atol=1e-12)
        finals[sweeps] = hist.final_norm
    assert finals[2] < finals[1]


def test_direct_local_solver_pipeline(fem_300):
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))
    res = solve(fem_300, b, method="block-jacobi", x0=x0, n_parts=6,
                max_steps=25, local_solver="direct", seed=0, runtime="flat")
    r_true = b - fem_300.matvec(res.x)
    assert np.isclose(np.linalg.norm(r_true), res.final_norm, atol=1e-12)
    assert res.final_norm < 0.01


def test_same_system_reused_across_methods(fem_300):
    """The experiment runners share one BlockSystem across methods; the
    methods must not corrupt shared state."""
    part = partition(fem_300, 8, seed=3)
    system = build_block_system(fem_300, part)
    rng = np.random.default_rng(3)
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))

    first = DistributedSouthwell(system)
    h1 = first.run(x0, b, max_steps=10)
    second = DistributedSouthwell(system)
    h2 = second.run(x0, b, max_steps=10)
    assert h1.residual_norms == h2.residual_norms
    assert (first.engine.stats.total_messages
            == second.engine.stats.total_messages)


def test_seeded_determinism(fem_300):
    """Identical seeds ⇒ identical runs, bit for bit (the whole stack is
    deterministic: partitioner, initial state, message schedule)."""
    a = solve(fem_300, method="distributed-southwell", n_parts=8,
              max_steps=15, seed=42)
    b = solve(fem_300, method="distributed-southwell", n_parts=8,
              max_steps=15, seed=42)
    assert a.history.residual_norms == b.history.residual_norms
    assert a.comm_cost == b.comm_cost
    assert np.array_equal(a.x, b.x)


def test_different_partitions_same_convergence_class(fem_300):
    """Method behaviour is partition-robust: multilevel, spectral and
    strided partitions all converge.  (Message *counts* scale with the
    neighbor count, not the cut size — a banded 'strided' split of a 2D
    mesh has ~2 neighbors per process and can send fewer, larger
    messages; the graph-aware partitions win on bytes.)"""
    out = {}
    for method in ("multilevel", "spectral", "strided"):
        res = solve(fem_300, method="distributed-southwell", n_parts=8,
                    max_steps=40, partition_method=method, seed=0)
        out[method] = res
        assert res.final_norm < 0.05, method


@pytest.mark.parametrize("x_zeros", [False, True])
def test_cli_matches_api(tmp_path, capsys, x_zeros, poisson_100):
    """The CLI's -format_out numbers equal a direct API run."""
    from repro.cli import main
    from repro.sparsela import write_matrix_market

    path = tmp_path / "m.mtx"
    write_matrix_market(path, poisson_100)
    args = ["-n", "4", "-sweep_max", "6", "-mat_file", str(path),
            "-solver", "sos_sds", "-format_out", "-seed", "3"]
    if x_zeros:
        args.append("-x_zeros")
    assert main(args) == 0
    fields = dict(line.split(None, 1)
                  for line in capsys.readouterr().out.strip().splitlines())

    rng = np.random.default_rng(3)
    if x_zeros:
        x0 = np.zeros(100)
        b = rng.uniform(-1, 1, 100)
        b /= np.linalg.norm(b)
    else:
        x0 = rng.uniform(-1, 1, 100)
        b = np.zeros(100)
        x0 /= np.linalg.norm(poisson_100.matvec(x0))
    res = solve(poisson_100, b, method="distributed-southwell", x0=x0,
                n_parts=4, max_steps=6, seed=3)
    assert np.isclose(float(fields["residual_norm"]), res.final_norm,
                      rtol=1e-12)
    assert np.isclose(float(fields["comm_cost"]), res.comm_cost)
