"""Tests for the greedy BFS multicoloring."""

import numpy as np

from repro.matrices.fem import fem_poisson_2d
from repro.matrices.poisson import poisson_1d, poisson_2d
from repro.partition import color_classes, greedy_coloring, is_valid_coloring


def test_path_graph_needs_two_colors():
    A = poisson_1d(10)
    colors = greedy_coloring(A)
    assert is_valid_coloring(A, colors)
    assert colors.max() + 1 == 2


def test_grid_graph_needs_two_colors():
    """5-point grids are bipartite (red-black)."""
    A = poisson_2d(8)
    colors = greedy_coloring(A)
    assert is_valid_coloring(A, colors)
    assert colors.max() + 1 == 2


def test_fem_coloring_valid_and_small():
    A = fem_poisson_2d(target_rows=300, seed=0).matrix
    colors = greedy_coloring(A)
    assert is_valid_coloring(A, colors)
    # triangulations are planar: greedy BFS stays well under 10 colors
    assert colors.max() + 1 <= 8


def test_paper_problem_needs_six_colors():
    """The paper reports 6 colors for its 3081-row FEM problem; our analog
    mesh class lands on the same count."""
    A = fem_poisson_2d(target_rows=3081, seed=0).matrix
    colors = greedy_coloring(A)
    assert is_valid_coloring(A, colors)
    assert 5 <= colors.max() + 1 <= 7


def test_color_classes_partition_rows():
    A = poisson_2d(6)
    colors = greedy_coloring(A)
    classes = color_classes(colors)
    joined = np.concatenate(classes)
    assert np.array_equal(np.sort(joined), np.arange(36))


def test_invalid_coloring_detected():
    A = poisson_1d(4)
    assert not is_valid_coloring(A, np.zeros(4, dtype=int))


def test_custom_order_respected():
    A = poisson_1d(6)
    colors = greedy_coloring(A, order=np.arange(6)[::-1])
    assert is_valid_coloring(A, colors)
