"""Tests for the local subdomain solvers."""

import numpy as np
import pytest

from repro.core.local_solvers import (
    DirectLocal,
    GaussSeidelLocal,
    make_local_solver,
)
from repro.sparsela import CSRMatrix
from repro.sparsela.kernels import gauss_seidel_sweep_reference


def test_gs_local_matches_reference(poisson_100, rng):
    solver = GaussSeidelLocal(poisson_100)
    r = rng.standard_normal(100)
    dx = solver.apply(r)
    # one GS sweep from x=0 on A x = r gives x == dx
    expected = gauss_seidel_sweep_reference(poisson_100, np.zeros(100), r)
    assert np.allclose(dx, expected, atol=1e-12)


def test_gs_local_two_sweeps(poisson_100, rng):
    solver = GaussSeidelLocal(poisson_100, n_sweeps=2)
    r = rng.standard_normal(100)
    dx = solver.apply(r)
    x = gauss_seidel_sweep_reference(poisson_100, np.zeros(100), r)
    x = gauss_seidel_sweep_reference(poisson_100, x, r)
    assert np.allclose(dx, x, atol=1e-12)


def test_direct_local_solves_exactly(poisson_100, rng):
    solver = DirectLocal(poisson_100)
    r = rng.standard_normal(100)
    dx = solver.apply(r)
    assert np.allclose(poisson_100.matvec(dx), r, atol=1e-10)


def test_flops_estimates_positive(poisson_100):
    assert GaussSeidelLocal(poisson_100).flops > 0
    assert DirectLocal(poisson_100).flops > 0
    assert (GaussSeidelLocal(poisson_100, n_sweeps=3).flops
            == 3 * GaussSeidelLocal(poisson_100).flops)


def test_factory(poisson_100):
    assert isinstance(make_local_solver("gs", poisson_100),
                      GaussSeidelLocal)
    assert isinstance(make_local_solver("direct", poisson_100),
                      DirectLocal)
    with pytest.raises(ValueError):
        make_local_solver("pardiso", poisson_100)


def test_gs_local_validates():
    bad = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(ValueError):
        GaussSeidelLocal(bad)
    rect = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError):
        GaussSeidelLocal(rect)
    with pytest.raises(ValueError):
        GaussSeidelLocal(CSRMatrix.identity(2), n_sweeps=0)


def test_single_row_block():
    """1x1 blocks (scalar partitions) must solve exactly."""
    A = CSRMatrix.from_dense(np.array([[2.0]]))
    assert np.isclose(GaussSeidelLocal(A).apply(np.array([3.0]))[0], 1.5)
    assert np.isclose(DirectLocal(A).apply(np.array([3.0]))[0], 1.5)
