"""Property-based tests (hypothesis): the distributed methods on random
SPD systems with random partitions.

For arbitrary SPD matrices, partition layouts and initial data, the
following must hold after any number of steps:

- residual bookkeeping is exact (the message traffic loses nothing);
- Parallel Southwell's Γ equals the true squared neighbor norms;
- Distributed Southwell's Γ̃ mirror is bit-exact;
- no two *adjacent* processes relax in the same Parallel Southwell step.
"""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices.random_spd import random_sparse_spd
from repro.partition import partition
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import symmetric_unit_diagonal_scale

METHOD_CLASSES = [BlockJacobi, ParallelSouthwell, DistributedSouthwell]


def _random_setup(n, n_parts, seed, density=0.08):
    A = random_sparse_spd(n, density=density, seed=seed, shift=0.3)
    A = symmetric_unit_diagonal_scale(A).matrix
    part = partition(A, n_parts, seed=seed)
    system = build_block_system(A, part)
    rng = np.random.default_rng(seed + 1)
    x0 = rng.uniform(-1, 1, n)
    b = rng.uniform(-1, 1, n)
    nrm = np.linalg.norm(b - A.matvec(x0))
    return A, system, x0 / max(nrm, 1e-12), b / max(nrm, 1e-12)


@given(st.integers(20, 60), st.integers(2, 6), st.integers(0, 10_000),
       st.sampled_from(METHOD_CLASSES))
@settings(max_examples=25, deadline=None)
def test_residual_exactness_random_systems(n, n_parts, seed, cls):
    A, system, x0, b = _random_setup(n, n_parts, seed)
    method = cls(system)
    method.run(x0, b, max_steps=6)
    r_true = b - A.matvec(method.solution())
    assert np.allclose(method.residual_vector(), r_true, atol=1e-10)


@given(st.integers(20, 60), st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_ps_gamma_exact_random_systems(n, n_parts, seed):
    _, system, x0, b = _random_setup(n, n_parts, seed)
    ps = ParallelSouthwell(system)
    ps.setup(x0, b)
    for _ in range(5):
        ps.step()
        for p in range(system.n_parts):
            for i, q in enumerate(system.neighbors_of(p)):
                v = float(ps.norms[int(q)])
                assert ps.gamma_sq[p][i] == v * v


@given(st.integers(20, 60), st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_ds_tilde_mirror_random_systems(n, n_parts, seed):
    _, system, x0, b = _random_setup(n, n_parts, seed)
    ds = DistributedSouthwell(system)
    ds.setup(x0, b)
    pos = [{int(t): j for j, t in enumerate(system.neighbors_of(q))}
           for q in range(system.n_parts)]
    for _ in range(5):
        ds.step()
        for p in range(system.n_parts):
            for i, q in enumerate(system.neighbors_of(p)):
                q = int(q)
                assert ds.tilde_sq[p][i] == ds.gamma_sq[q][pos[q][p]]


@given(st.integers(25, 60), st.integers(3, 6), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_ps_relaxers_form_independent_set(n, n_parts, seed):
    _, system, x0, b = _random_setup(n, n_parts, seed)
    ps = ParallelSouthwell(system)
    ps.setup(x0, b)
    for _ in range(5):
        before = [np.array(x) for x in ps.x_blocks]
        ps.step()
        relaxed = {p for p in range(system.n_parts)
                   if not np.array_equal(before[p], ps.x_blocks[p])}
        for p in relaxed:
            nbrs = {int(q) for q in system.neighbors_of(p)}
            assert not (relaxed & nbrs)


@given(st.integers(20, 50), st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
@example(n=38, seed=6976)     # transiently non-monotone run (see below)
def test_ds_makes_progress_on_random_spd(n, seed):
    """On any (well-shifted) random SPD system DS makes progress —
    the deadlock-avoidance guarantee in property form.

    DS is not monotone step-to-step: on tiny random systems a run can
    overshoot after improving (the paper claims deadlock-freedom and no
    Block-Jacobi-style divergence, not monotonicity), so the property is
    that the run improves on the initial residual at some step, never
    that a fixed step count ends below it.
    """
    A, system, x0, b = _random_setup(n, 4, seed)
    ds = DistributedSouthwell(system)
    hist = ds.run(x0, b, max_steps=25)
    assert min(hist.residual_norms) < hist.initial_norm


@given(st.integers(20, 50), st.integers(2, 5), st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_ds_comm_never_exceeds_ps_plus_margin(n, n_parts, seed):
    """DS's whole purpose: over a matched run it should essentially never
    send more messages than PS (tiny problems can tie)."""
    _, system, x0, b = _random_setup(n, n_parts, seed)
    ps = ParallelSouthwell(system)
    ps.run(x0, b, max_steps=10)
    ds = DistributedSouthwell(system)
    ds.run(x0, b, max_steps=10)
    assert (ds.engine.stats.total_messages
            <= ps.engine.stats.total_messages * 1.25 + 10)
