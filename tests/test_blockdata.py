"""Tests for the distributed block data layout."""

import numpy as np
import pytest

from repro.core.blockdata import build_block_system
from repro.partition import partition


@pytest.fixture(scope="module")
def system_and_parts(fem_300):
    part = partition(fem_300, 6, seed=0)
    return build_block_system(fem_300, part), part


def test_diag_blocks_match_matrix(system_and_parts, fem_300):
    system, part = system_and_parts
    Aperm = fem_300.permute(part.perm)
    dense = Aperm.to_dense()
    for p in range(part.n_parts):
        sl = system.rows_slice(p)
        assert np.allclose(system.diag_blocks[p].to_dense(),
                           dense[sl, sl])


def test_couplings_reconstruct_offblock(system_and_parts, fem_300):
    """Couplings + diagonal blocks together account for every entry."""
    system, part = system_and_parts
    Aperm = fem_300.permute(part.perm)
    dense = Aperm.to_dense()
    rebuilt = np.zeros_like(dense)
    for p in range(part.n_parts):
        sl = system.rows_slice(p)
        rebuilt[sl, sl] = system.diag_blocks[p].to_dense()
    for (p, q), block in system.couplings.items():
        rows = system.beta[(q, p)] + part.offsets[q]
        cols = np.arange(part.offsets[p], part.offsets[p + 1])
        rebuilt[np.ix_(rows, cols)] += block.to_dense()
    assert np.allclose(rebuilt, dense)


def test_delta_matches_direct_product(system_and_parts, fem_300, rng):
    """-B @ dx equals the true residual change on the neighbor rows."""
    system, part = system_and_parts
    Aperm = fem_300.permute(part.perm)
    dense = Aperm.to_dense()
    p = 0
    q = int(system.neighbors_of(p)[0])
    m_p = system.size_of(p)
    dx = rng.standard_normal(m_p)
    dx_global = np.zeros(fem_300.n_rows)
    dx_global[system.rows_slice(p)] = dx
    true_delta = -(dense @ dx_global)[system.rows_slice(q)]
    block_delta = -system.couplings[(p, q)].matvec(dx)
    expect = np.zeros(system.size_of(q))
    expect[system.beta[(q, p)]] = block_delta
    assert np.allclose(expect, true_delta, atol=1e-12)


def test_beta_lists_sorted_unique(system_and_parts):
    system, part = system_and_parts
    for key, rows in system.beta.items():
        assert np.all(np.diff(rows) > 0)
        q = key[0]
        assert rows.max() < system.size_of(q)


def test_initial_residual_blocks(system_and_parts, fem_300, rng):
    system, part = system_and_parts
    n = fem_300.n_rows
    x = rng.standard_normal(n)
    b = rng.standard_normal(n)
    blocks = system.initial_residual(x, b)
    full = b - system.A.matvec(x)
    assert np.allclose(np.concatenate(blocks), full)


def test_topology_matches_neighbor_lists(system_and_parts):
    system, part = system_and_parts
    for p in range(part.n_parts):
        for q in system.neighbors_of(p):
            assert (p, int(q)) in system.couplings
            assert (int(q), p) in system.beta
