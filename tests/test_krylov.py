"""Tests for (preconditioned) conjugate gradients."""

import numpy as np
import pytest

from repro.core.blockdata import build_block_system
from repro.core.distributed_southwell_block import DistributedSouthwell
from repro.partition import partition
from repro.solvers.block_jacobi import BlockJacobi
from repro.solvers.krylov import (
    block_method_preconditioner,
    conjugate_gradient,
)
from repro.sparsela import CSRMatrix


def test_cg_solves_spd(poisson_100, rng):
    b = rng.standard_normal(100)
    res = conjugate_gradient(poisson_100, b, tol=1e-10)
    assert res.converged
    assert np.allclose(poisson_100.matvec(res.x), b, atol=1e-7)


def test_cg_zero_rhs(poisson_100):
    res = conjugate_gradient(poisson_100, np.zeros(100))
    assert res.converged
    assert res.iterations == 0


def test_cg_finite_termination(rng):
    """CG converges in at most n steps in exact arithmetic; small well-
    conditioned systems should do so numerically too."""
    from repro.matrices.random_spd import random_spd

    A = random_spd(15, seed=4, condition=10.0)
    b = rng.standard_normal(15)
    res = conjugate_gradient(A, b, tol=1e-12, max_iter=30)
    assert res.converged
    assert res.iterations <= 20


def test_cg_respects_max_iter(poisson_100, rng):
    b = rng.standard_normal(100)
    res = conjugate_gradient(poisson_100, b, tol=1e-14, max_iter=2)
    assert not res.converged
    assert res.iterations == 2


def test_cg_residual_history_monotone_tail(poisson_100, rng):
    b = rng.standard_normal(100)
    res = conjugate_gradient(poisson_100, b, tol=1e-10)
    assert res.residual_norms[-1] < res.residual_norms[0]


def test_pcg_with_block_jacobi_reduces_iterations(fem_300, rng):
    b = rng.standard_normal(fem_300.n_rows)
    plain = conjugate_gradient(fem_300, b, tol=1e-8, max_iter=2000)
    part = partition(fem_300, 6, seed=0)
    system = build_block_system(fem_300, part, local_solver="direct")
    precond = block_method_preconditioner(lambda: BlockJacobi(system),
                                          n_steps=2)
    pcg = conjugate_gradient(fem_300, b, tol=1e-8, max_iter=2000,
                             preconditioner=precond)
    assert pcg.converged
    assert pcg.iterations < plain.iterations


def test_pcg_with_distributed_southwell(fem_300, rng):
    """The paper's motivating use: DS as a (nonlinear) preconditioner via
    flexible CG."""
    b = rng.standard_normal(fem_300.n_rows)
    part = partition(fem_300, 6, seed=0)
    system = build_block_system(fem_300, part)
    precond = block_method_preconditioner(
        lambda: DistributedSouthwell(system), n_steps=4)
    res = conjugate_gradient(fem_300, b, tol=1e-8, max_iter=2000,
                             preconditioner=precond)
    assert res.converged
    assert np.allclose(fem_300.matvec(res.x), b, atol=1e-6)


def test_cg_detects_indefiniteness():
    A = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
    res = conjugate_gradient(A, np.array([1.0, 1.0]), max_iter=10)
    assert not res.converged
