"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices.fem import fem_poisson_2d
from repro.matrices.poisson import poisson_2d
from repro.sparsela import CSRMatrix, symmetric_unit_diagonal_scale


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_dense(rng):
    """A 25x25 random sparse-patterned dense matrix (general)."""
    d = rng.standard_normal((25, 25))
    d[rng.random((25, 25)) > 0.25] = 0.0
    return d


@pytest.fixture
def small_csr(small_dense):
    return CSRMatrix.from_dense(small_dense)


@pytest.fixture(scope="session")
def poisson_100():
    """Unit-diagonal scaled 10x10 Poisson (100 rows, SPD)."""
    return symmetric_unit_diagonal_scale(poisson_2d(10)).matrix


@pytest.fixture(scope="session")
def fem_300():
    """A 300-row irregular FEM Poisson problem (unit diagonal)."""
    return fem_poisson_2d(target_rows=300, seed=5).matrix


@pytest.fixture(scope="session")
def spd_system(poisson_100):
    """(A, x0, b) with ‖r0‖=1, the paper's initial-state convention."""
    rng = np.random.default_rng(99)
    n = poisson_100.n_rows
    x0 = rng.uniform(-1.0, 1.0, n)
    b = np.zeros(n)
    x0 = x0 / np.linalg.norm(poisson_100.matvec(x0))
    return poisson_100, x0, b
