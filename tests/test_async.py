"""Tests for the discrete-event asynchronous engine and async DS."""

import numpy as np
import pytest

from repro.core import AsyncDistributedSouthwell, DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.partition import partition
from repro.runtime import CATEGORY_SOLVE, CostModel
from repro.runtime.async_engine import AsyncEngine


# ------------------------------------------------------------- engine
def test_clocks_advance_with_compute_and_sends():
    cm = CostModel(alpha=1.0, alpha_recv=0.5, beta=0.0, gamma=2.0)
    eng = AsyncEngine(2, cost_model=cm, network_latency=10.0)
    eng.charge_compute(0, 3.0)
    assert eng.clocks[0] == 6.0
    eng.put(0, 1, CATEGORY_SOLVE, {"x": 1.0})
    assert eng.clocks[0] == 7.0
    # not delivered yet: receiver clock is 0 < 7 + 10
    assert eng.read(1) == []
    eng.charge_idle(1, 17.0)
    msgs = eng.read(1)
    assert len(msgs) == 1
    assert eng.clocks[1] == 17.5          # + alpha_recv


def test_message_visibility_respects_latency():
    eng = AsyncEngine(2, network_latency=100.0,
                      cost_model=CostModel(alpha=0.0, alpha_recv=0.0,
                                           beta=0.0, gamma=0.0))
    eng.put(0, 1, CATEGORY_SOLVE, {})
    eng.charge_idle(1, 99.9)
    assert eng.read(1) == []
    eng.charge_idle(1, 0.2)
    assert len(eng.read(1)) == 1


def test_scheduler_picks_smallest_clock():
    eng = AsyncEngine(3)
    p0 = eng.next_process()
    eng.charge_idle(p0, 1.0)
    eng.reschedule(p0)
    p1 = eng.next_process()
    assert p1 != p0
    eng.charge_idle(p1, 2.0)
    eng.reschedule(p1)
    p2 = eng.next_process()
    assert p2 not in (p0, p1)
    eng.charge_idle(p2, 3.0)
    eng.reschedule(p2)
    assert eng.next_process() == p0       # smallest clock again


def test_speed_factors_scale_compute_only():
    cm = CostModel(alpha=1.0, alpha_recv=0.0, beta=0.0, gamma=1.0)
    eng = AsyncEngine(2, cost_model=cm, speed_factors=np.array([1.0, 0.5]))
    eng.charge_compute(0, 4.0)
    eng.charge_compute(1, 4.0)
    assert eng.clocks[0] == 4.0
    assert eng.clocks[1] == 8.0           # half speed
    eng.put(1, 0, CATEGORY_SOLVE, {})
    assert eng.clocks[1] == 9.0           # wire time not scaled


def test_engine_validation():
    with pytest.raises(ValueError):
        AsyncEngine(0)
    with pytest.raises(ValueError):
        AsyncEngine(2, network_latency=-1.0)
    with pytest.raises(ValueError):
        AsyncEngine(2, speed_factors=np.array([1.0, 0.0]))
    eng = AsyncEngine(2)
    with pytest.raises(ValueError):
        eng.put(0, 0, CATEGORY_SOLVE, {})
    with pytest.raises(ValueError):
        eng.charge_idle(0, -1.0)


def test_fifo_per_sender_preserved():
    eng = AsyncEngine(2, cost_model=CostModel(alpha=1.0, alpha_recv=0.0,
                                              beta=0.0, gamma=0.0))
    for k in range(4):
        eng.put(0, 1, CATEGORY_SOLVE, {"k": float(k)})
    eng.charge_idle(1, 100.0)
    ks = [m.payload["k"] for m in eng.read(1)]
    assert ks == [0.0, 1.0, 2.0, 3.0]


# ------------------------------------------------------------ async DS
@pytest.fixture(scope="module")
def async_setup(fem_300):
    part = partition(fem_300, 8, seed=0)
    system = build_block_system(fem_300, part)
    rng = np.random.default_rng(5)
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))
    return system, x0, b


def test_async_ds_converges(async_setup):
    system, x0, b = async_setup
    ads = AsyncDistributedSouthwell(system)
    hist = ads.run(x0, b, max_turns=10_000, target_norm=0.02,
                   record_every=64)
    assert hist.final_norm <= 0.02


def test_async_ds_residual_exact_after_drain(async_setup, fem_300):
    system, x0, b = async_setup
    ads = AsyncDistributedSouthwell(system)
    ads.run(x0, b, max_turns=3_000)
    ads.drain()
    r_true = b - fem_300.matvec(ads.solution())
    assert np.allclose(ads.residual_vector(), r_true, atol=1e-11)


def test_async_ds_time_comparable_to_lockstep(async_setup):
    """Same algorithm, two execution models: time-to-target should land
    in the same ballpark (within 3x either way)."""
    system, x0, b = async_setup
    ads = AsyncDistributedSouthwell(system)
    ha = ads.run(x0, b, max_turns=50_000, target_norm=0.05,
                 record_every=64)
    t_async = ads.engine.elapsed
    ds = DistributedSouthwell(system)
    ds.run(x0, b, max_steps=200, target_norm=0.05, stop_at_target=True)
    t_sync = ds.engine.stats.elapsed_time()
    assert ha.final_norm <= 0.05
    assert t_async < 3.0 * t_sync
    assert t_sync < 3.0 * t_async


def test_async_absorbs_straggler(async_setup):
    """A 4x-slower process barely affects async time-to-target, while it
    stretches every lockstep step."""
    system, x0, b = async_setup
    P = system.n_parts
    slow = np.ones(P)
    slow[2] = 0.25

    uniform = AsyncDistributedSouthwell(system)
    uniform.run(x0, b, max_turns=50_000, target_norm=0.05, record_every=64)
    straggled = AsyncDistributedSouthwell(system, speed_factors=slow)
    h = straggled.run(x0, b, max_turns=50_000, target_norm=0.05,
                      record_every=64)
    assert h.final_norm <= 0.05
    assert straggled.engine.elapsed < 2.0 * uniform.engine.elapsed


def test_async_ds_validation(async_setup):
    system, x0, b = async_setup
    with pytest.raises(ValueError):
        AsyncDistributedSouthwell(system, poll_interval=0.0)
    ads = AsyncDistributedSouthwell(system)
    with pytest.raises(ValueError):
        ads.run(x0, b)


def test_lockstep_straggler_support(async_setup):
    """The lockstep engine's speed_factors stretch priced steps."""
    system, x0, b = async_setup
    P = system.n_parts
    slow = np.ones(P)
    slow[0] = 0.1
    fast = DistributedSouthwell(system)
    fast.run(x0, b, max_steps=10)
    slowed = DistributedSouthwell(system, speed_factors=slow)
    slowed.run(x0, b, max_steps=10)
    # identical mathematics, strictly more simulated time
    assert (slowed.history.residual_norms == fast.history.residual_norms)
    assert (slowed.engine.stats.elapsed_time()
            > fast.engine.stats.elapsed_time())
