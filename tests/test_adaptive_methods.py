"""Tests for the Section 5 related-work methods and the thresholded DS."""

import numpy as np
import pytest

from repro.core import (
    DistributedSouthwell,
    SimultaneousAdaptiveRelaxation,
    ThresholdedDistributedSouthwell,
    greedy_multiplicative_schwarz,
    sequential_adaptive_relaxation,
    sequential_southwell,
)
from repro.core.blockdata import build_block_system
from repro.partition import partition


@pytest.fixture
def state(poisson_100):
    rng = np.random.default_rng(31)
    n = poisson_100.n_rows
    b = rng.uniform(-1, 1, n)
    b /= np.linalg.norm(b)
    return poisson_100, np.zeros(n), b


# --------------------------------------------- sequential adaptive (Rüde)
def test_sequential_adaptive_converges(state):
    A, x0, b = state
    hist = sequential_adaptive_relaxation(A, x0, b, 400, tolerance=1e-6)
    assert hist.final_norm < 0.2 * hist.initial_norm


def test_sequential_adaptive_with_loose_tolerance_stops_early(state):
    A, x0, b = state
    hist = sequential_adaptive_relaxation(A, x0, b, 10_000, tolerance=0.5)
    # a huge significance threshold deactivates everything quickly
    assert hist.relaxations[-1] < 10_000


def test_sequential_adaptive_tight_tolerance_tracks_southwell(state):
    """With tolerance -> 0 and a full initial active set, the active-set
    method relaxes the same first row as Sequential Southwell."""
    A, x0, b = state
    a1 = sequential_adaptive_relaxation(A, x0, b, 1, tolerance=0.0)
    s1 = sequential_southwell(A, x0, b, 1)
    assert np.isclose(a1.residual_norms[-1], s1.residual_norms[-1])


def test_sequential_adaptive_restricted_active_set(state):
    A, x0, b = state
    hist = sequential_adaptive_relaxation(
        A, x0, b, 50, tolerance=1e-8,
        initial_active=np.arange(10))
    # relaxations happen (the set grows through neighbors)
    assert hist.relaxations[-1] > 0


def test_sequential_adaptive_rejects_zero_diag():
    from repro.sparsela import CSRMatrix

    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(ValueError):
        sequential_adaptive_relaxation(A, np.zeros(2), np.ones(2), 5)


# ---------------------------------------------- simultaneous (threshold)
def test_simultaneous_adaptive_converges_on_poisson(state):
    A, x0, b = state
    sar = SimultaneousAdaptiveRelaxation(A, theta_factor=0.5)
    hist = sar.run(x0, b, max_steps=100)
    assert hist.final_norm < 0.05
    # residual bookkeeping
    assert np.allclose(sar.r, b - A.matvec(sar.x), atol=1e-12)


def test_simultaneous_adaptive_zero_threshold_is_jacobi(state):
    """theta_factor=0 relaxes every nonzero-residual row: plain Jacobi."""
    from repro.solvers.scalar import jacobi_trace

    A, x0, b = state
    sar = SimultaneousAdaptiveRelaxation(A, theta_factor=0.0)
    hist = sar.run(x0, b, max_steps=5)
    ref = jacobi_trace(A, x0, b, 5)
    assert np.allclose(hist.residual_norms, ref.residual_norms, atol=1e-12)


def test_simultaneous_adaptive_can_diverge_where_southwell_does_not():
    """Like Jacobi, the threshold scheme is not convergence-safe: on a
    strongly non-dominant SPD elasticity matrix, relaxing coupled rows
    together diverges while (sequential) Southwell descends."""
    from repro.matrices.elasticity import elasticity_fem_2d

    prob = elasticity_fem_2d(target_rows=200, nu=0.49, seed=4)
    A = prob.matrix
    rng = np.random.default_rng(0)
    b = rng.uniform(-1, 1, A.n_rows)
    b /= np.linalg.norm(b)
    x0 = np.zeros(A.n_rows)
    sar = SimultaneousAdaptiveRelaxation(A, theta_factor=0.0)
    hist = sar.run(x0, b, max_steps=60)
    sw = sequential_southwell(A, x0, b, 60 * A.n_rows // 10)
    assert hist.final_norm > 1.0          # diverged
    assert sw.final_norm < 1.0            # Southwell is fine


def test_simultaneous_adaptive_validation(poisson_100):
    with pytest.raises(ValueError):
        SimultaneousAdaptiveRelaxation(poisson_100, theta_factor=1.0)


# --------------------------------------------- greedy mult. Schwarz [10]
def test_greedy_schwarz_converges(fem_300, rng):
    part = partition(fem_300, 8, seed=0)
    system = build_block_system(fem_300, part, local_solver="direct")
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))
    hist = greedy_multiplicative_schwarz(system, x0, b, n_solves=40)
    assert hist.final_norm < 0.05
    assert hist.parallel_steps[-1] <= 40


def test_greedy_schwarz_single_block_is_direct_solve(fem_300, rng):
    part = partition(fem_300, 1, method="strided")
    system = build_block_system(fem_300, part, local_solver="direct")
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    hist = greedy_multiplicative_schwarz(system, x0, b, n_solves=1)
    assert hist.final_norm < 1e-8


def test_greedy_schwarz_monotone_residual(fem_300, rng):
    """Exact subdomain solves never increase the global residual norm on
    the solved block, and in practice descend monotonically here."""
    part = partition(fem_300, 6, seed=1)
    system = build_block_system(fem_300, part, local_solver="direct")
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))
    hist = greedy_multiplicative_schwarz(system, x0, b, n_solves=30)
    norms = np.array(hist.residual_norms)
    assert norms[-1] < norms[0]


# ------------------------------------------------------- thresholded DS
@pytest.fixture(scope="module")
def block_state(fem_300):
    part = partition(fem_300, 10, seed=0)
    system = build_block_system(fem_300, part)
    rng = np.random.default_rng(77)
    x0 = rng.uniform(-1, 1, fem_300.n_rows)
    b = np.zeros(fem_300.n_rows)
    x0 /= np.linalg.norm(fem_300.matvec(x0))
    return system, x0, b


def test_threshold_zero_is_plain_ds(block_state):
    system, x0, b = block_state
    plain = DistributedSouthwell(system)
    plain.run(x0, b, max_steps=15)
    thr = ThresholdedDistributedSouthwell(system, threshold=0.0)
    thr.run(x0, b, max_steps=15)
    assert np.allclose(plain.history.residual_norms,
                       thr.history.residual_norms, rtol=1e-12)
    assert thr.suppressed_sends == 0
    assert (plain.engine.stats.total_messages
            == thr.engine.stats.total_messages)


def test_threshold_reduces_solve_messages(block_state):
    from repro.runtime import CATEGORY_SOLVE

    system, x0, b = block_state
    plain = DistributedSouthwell(system)
    plain.run(x0, b, max_steps=25)
    thr = ThresholdedDistributedSouthwell(system, threshold=0.3)
    thr.run(x0, b, max_steps=25)
    assert thr.suppressed_sends > 0
    assert (thr.engine.stats.category_msgs[CATEGORY_SOLVE]
            < plain.engine.stats.category_msgs[CATEGORY_SOLVE])
    # and still converges usefully
    assert thr.history.final_norm < 0.1


def test_threshold_flush_restores_exact_residual(block_state, fem_300):
    system, x0, b = block_state
    thr = ThresholdedDistributedSouthwell(system, threshold=0.3)
    thr.run(x0, b, max_steps=20)       # run() flushes
    r_true = b - fem_300.matvec(thr.solution())
    assert np.allclose(thr.residual_vector(), r_true, atol=1e-12)


def test_threshold_validation(block_state):
    system, _, _ = block_state
    with pytest.raises(ValueError):
        ThresholdedDistributedSouthwell(system, threshold=-0.1)
