"""Tests for the export helpers and the experiments CLI."""

import csv
import json

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceHistory,
    history_to_rows,
    rows_to_csv,
    rows_to_json,
)
from repro.experiments.__main__ import main


def _rows():
    return [{"matrix": "a", "value": 1.5, "missing": None},
            {"matrix": "b", "value": np.float64(2.5),
             "missing": np.int64(3)}]


def test_rows_to_csv_roundtrip(tmp_path):
    path = rows_to_csv(_rows(), tmp_path / "out.csv")
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert rows[0]["matrix"] == "a"
    assert rows[0]["missing"] == ""
    assert float(rows[1]["value"]) == 2.5


def test_rows_to_csv_column_selection(tmp_path):
    path = rows_to_csv(_rows(), tmp_path / "out.csv",
                       columns=["value", "matrix"])
    header = path.read_text().splitlines()[0]
    assert header == "value,matrix"


def test_rows_to_csv_empty(tmp_path):
    path = rows_to_csv([], tmp_path / "empty.csv")
    assert path.read_text() == ""


def test_rows_to_json(tmp_path):
    path = rows_to_json(_rows(), tmp_path / "out.json")
    data = json.loads(path.read_text())
    assert data[1]["missing"] == 3
    assert isinstance(data[1]["value"], float)


def test_history_to_rows():
    h = ConvergenceHistory()
    h.append(1.0, 0, 0)
    h.append(0.5, 10, 1, comm_cost=2.0)
    rows = history_to_rows(h, label="DS")
    assert len(rows) == 2
    assert rows[1]["residual_norms"] == 0.5
    assert rows[1]["comm_costs"] == 2.0
    assert rows[0]["label"] == "DS"


def test_experiments_cli_table1(capsys):
    rc = main(["table1", "--scale", "small"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Flan_1565" in out
    assert "af_5_k101" in out


def test_experiments_cli_fig2_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "fig2.csv"
    rc = main(["fig2", "--scale", "small", "--csv", str(csv_path)])
    assert rc == 0
    assert csv_path.exists()
    with csv_path.open() as fh:
        rows = list(csv.DictReader(fh))
    assert {"GS", "SW", "Par SW", "MC GS", "Jacobi"} == {
        r["method"] for r in rows}


def test_experiments_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["fig99"])
