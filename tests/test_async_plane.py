"""Tests for the event-driven async runtime behind ``solve()``.

Covers the ISSUE-8 surface:

1. all three block methods converge under ``runtime="async"``;
2. the plane is bit-deterministic for fixed seeds (pinned digest);
3. it composes with a seeded :class:`FaultPlan` — DS reaches the
   residual target in less *simulated* time than PS under drops plus
   stragglers (the paper's low-communication claim, restated in the
   event model);
4. ``SolveResult`` schema v4 (virtual_time / rank_clocks / rank_idle /
   ``timeline()``) round-trips;
5. ``AsyncConfig`` / ``RunConfig`` validation raises early;
6. plans that force the object plane raise ``AsyncUnsupportedError``.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.api import AsyncConfig, RunConfig, SolveResult, solve
from repro.core.async_exec import AsyncUnsupportedError
from repro.faults import FaultPlan
from repro.matrices.fem import fem_poisson_2d
from repro.matrices.poisson import poisson_2d
from repro.sparsela import symmetric_unit_diagonal_scale

METHODS = ("distributed-southwell", "parallel-southwell", "block-jacobi")

# sha256 of res.x for the pinned straggler+drop DS scenario below;
# any change to the event order, fault draws, or clock arithmetic
# shows up here first.
PINNED_DS_DIGEST = ("972e63d5386b440230b0fcb4816b155b"
                    "50dfa27b60e7f7d86c3019f010240411")


def _digest(x: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(x).tobytes()).hexdigest()


def _pinned_scenario_result() -> SolveResult:
    A = fem_poisson_2d(target_rows=900, seed=0).matrix
    plan = FaultPlan.uniform(drop=0.2, seed=7)
    acfg = AsyncConfig(speed_factors=((0, 0.5), (3, 0.5)))
    return solve(A, method="distributed-southwell",
                 config=RunConfig(n_parts=16, max_steps=60, seed=0,
                                  faults=plan, runtime="async",
                                  async_config=acfg))


# ----------------------------------------------------------------- 1/2
@pytest.mark.parametrize("method", METHODS)
def test_async_runtime_converges(fem_300, method):
    res = solve(fem_300, method=method, n_parts=6, max_steps=30, seed=0,
                runtime="async")
    assert res.final_norm < 0.2
    # exactness after the end-of-run drain: reported norm == true norm
    r_true = -fem_300.matvec(res.x)
    assert np.isclose(np.linalg.norm(r_true), res.final_norm, atol=1e-12)
    assert res.virtual_time is not None and res.virtual_time > 0.0
    assert res.rank_clocks is not None and len(res.rank_clocks) == 6
    assert res.rank_idle is not None and len(res.rank_idle) == 6
    assert all(i <= c for i, c in zip(res.rank_idle, res.rank_clocks))


def test_async_plane_deterministic_pinned_digest():
    res = _pinned_scenario_result()
    assert _digest(res.x) == PINNED_DS_DIGEST
    assert res.repairs > 0
    assert res.faults_injected and res.faults_injected.get("drop:solve", 0) > 0


def test_async_lockstep_same_fixed_point(fem_300):
    """Async and lockstep drive the same residual equations: both end
    with an exactly-consistent (x, norm) pair on the same problem."""
    a = solve(fem_300, method="distributed-southwell", n_parts=6,
              max_steps=40, seed=0, runtime="async")
    l = solve(fem_300, method="distributed-southwell", n_parts=6,
              max_steps=40, seed=0, runtime="flat")
    assert a.final_norm < 0.1 and l.final_norm < 0.1


# ------------------------------------------------------------------- 3
def test_async_ds_beats_ps_under_drop_and_stragglers():
    """The fig8 analog, in miniature: ≥20% drop, 2× stragglers — DS
    reaches the target in simulated time; PS trails or never gets
    there."""
    A = fem_poisson_2d(target_rows=900, seed=0).matrix
    plan = FaultPlan.uniform(drop=0.2, seed=7)
    acfg = AsyncConfig(speed_factors=((0, 0.5), (3, 0.5)))
    target = 0.1
    times = {}
    for method in ("distributed-southwell", "parallel-southwell"):
        res = solve(A, method=method,
                    config=RunConfig(n_parts=16, max_steps=60, seed=0,
                                     faults=plan, runtime="async",
                                     async_config=acfg))
        times[method] = res.history.cost_to_reach(target, axis="times")
    ds, ps = times["distributed-southwell"], times["parallel-southwell"]
    assert ds is not None
    assert ps is None or ds < ps


# ------------------------------------------------------------------- 4
def test_solveresult_v4_roundtrip(fem_300):
    res = solve(fem_300, method="distributed-southwell", n_parts=4,
                max_steps=10, seed=0, runtime="async")
    doc = json.loads(json.dumps(res.to_dict()))
    assert doc["schema"] == "repro.solveresult/v5"
    assert doc["virtual_time"] == pytest.approx(res.virtual_time)
    assert doc["rank_clocks"] == pytest.approx(list(res.rank_clocks))
    assert doc["rank_idle"] == pytest.approx(list(res.rank_idle))
    tl = res.timeline()
    for key in ("residual_norms", "times", "comm_costs", "relaxations"):
        assert key in tl
        assert len(tl[key]) == len(tl["residual_norms"])
    # virtual time is what the history's time axis converges to
    assert tl["times"][-1] <= res.virtual_time + 1e-12


def test_v4_fields_null_under_lockstep(fem_300):
    res = solve(fem_300, method="block-jacobi", n_parts=4, max_steps=3,
                seed=0, runtime="flat")
    doc = res.to_dict()
    assert doc["virtual_time"] is None
    assert doc["rank_clocks"] is None
    assert doc["rank_idle"] is None


# ------------------------------------------------------------------- 5
def test_async_config_validation():
    with pytest.raises(ValueError):
        AsyncConfig(latency=-1.0)
    with pytest.raises(ValueError):
        AsyncConfig(poll_interval=0.0)
    with pytest.raises(ValueError):
        AsyncConfig(speed_factors=((-1, 2.0),))
    with pytest.raises(ValueError):
        AsyncConfig(speed_factors=((0, 0.0),))
    with pytest.raises(ValueError):
        AsyncConfig(max_time=0.0)
    with pytest.raises(ValueError):
        AsyncConfig(max_turns=0)
    with pytest.raises(ValueError):
        AsyncConfig(record_every=0)
    # frozen dataclass: assignment is an error
    cfg = AsyncConfig()
    with pytest.raises(Exception):
        cfg.latency = 1.0


def test_runconfig_carries_async_config(fem_300):
    acfg = AsyncConfig(latency=1e-5, record_every=32)
    cfg = RunConfig(n_parts=4, max_steps=10, seed=0, runtime="async",
                    async_config=acfg)
    res = solve(fem_300, method="block-jacobi", config=cfg)
    assert res.config.async_config is acfg
    assert res.virtual_time is not None


def test_speed_factor_rank_out_of_range(fem_300):
    acfg = AsyncConfig(speed_factors=((99, 2.0),))
    with pytest.raises(ValueError, match="rank"):
        solve(fem_300, method="block-jacobi", n_parts=4, max_steps=5,
              config=RunConfig(n_parts=4, max_steps=5, runtime="async",
                               async_config=acfg))


# ------------------------------------------------------------------- 6
def test_object_plane_plans_raise_async_unsupported():
    A = symmetric_unit_diagonal_scale(poisson_2d(12)).matrix
    plan = FaultPlan.uniform(delay=0.3, max_delay=4, seed=1)
    assert plan.requires_object_plane
    with pytest.raises(AsyncUnsupportedError):
        solve(A, method="distributed-southwell",
              config=RunConfig(n_parts=4, max_steps=10, seed=0,
                               faults=plan, runtime="async"))
