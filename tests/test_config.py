"""The central ``repro.config`` knob layer.

Contract: one read-through point for every ``REPRO_*`` environment
variable, with precedence ``explicit arg > programmatic override > env >
default`` and graceful degradation on junk values (a bad knob must never
break a run).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import config


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Every test starts with no REPRO_* knobs set."""
    for knob in config.KNOBS:
        monkeypatch.delenv(knob.env, raising=False)


# ----------------------------------------------------------------------
# precedence: explicit > env > default, per getter
# ----------------------------------------------------------------------
def test_backend_precedence(monkeypatch):
    assert config.backend() is None                  # default: unset
    monkeypatch.setenv(config.ENV_BACKEND, "reference")
    assert config.backend() == "reference"           # env
    assert config.backend("numba") == "numba"        # explicit wins


def test_runtime_precedence(monkeypatch):
    assert config.runtime() == "auto"
    monkeypatch.setenv(config.ENV_RUNTIME, "object")
    assert config.runtime() == "object"
    assert config.runtime("flat") == "flat"


def test_runtime_junk_degrades_to_auto(monkeypatch):
    monkeypatch.setenv(config.ENV_RUNTIME, "warp-drive")
    assert config.runtime() == "auto"
    assert config.runtime("  FLAT ") == "flat"       # normalised
    assert config.runtime("bogus") == "auto"


def test_async_latency_precedence(monkeypatch):
    assert config.async_latency() == pytest.approx(5.0e-6)   # default
    monkeypatch.setenv(config.ENV_ASYNC_LATENCY, "1e-4")
    assert config.async_latency() == pytest.approx(1.0e-4)   # env
    assert config.async_latency(2.5e-6) == pytest.approx(2.5e-6)  # explicit


def test_async_latency_junk_degrades_to_default(monkeypatch):
    monkeypatch.setenv(config.ENV_ASYNC_LATENCY, "not-a-number")
    assert config.async_latency() == pytest.approx(5.0e-6)
    monkeypatch.setenv(config.ENV_ASYNC_LATENCY, "-3.0")
    assert config.async_latency() == pytest.approx(5.0e-6)


def test_async_speed_factors_precedence(monkeypatch):
    assert config.async_speed_factors() is None              # default
    monkeypatch.setenv(config.ENV_ASYNC_SPEED, "0:0.5,3:2")
    assert config.async_speed_factors() == ((0, 0.5), (3, 2.0))
    # explicit wins over env, both as a spec string and pre-parsed
    assert config.async_speed_factors("1:4") == ((1, 4.0),)
    assert config.async_speed_factors(((2, 0.25),)) == ((2, 0.25),)


def test_async_speed_factors_junk_degrades_to_none(monkeypatch):
    monkeypatch.setenv(config.ENV_ASYNC_SPEED, "garbage")
    assert config.async_speed_factors() is None
    monkeypatch.setenv(config.ENV_ASYNC_SPEED, "none")
    assert config.async_speed_factors() is None


def test_parse_speed_factors_validation():
    with pytest.raises(ValueError):
        config.parse_speed_factors("0=2.0")
    with pytest.raises(ValueError):
        config.parse_speed_factors("-1:2.0")
    with pytest.raises(ValueError):
        config.parse_speed_factors("0:0")
    assert config.parse_speed_factors(" 0:1.5 , 2:0.5 ") == \
        ((0, 1.5), (2, 0.5))


def test_workers_precedence(monkeypatch):
    assert config.workers() == 0
    monkeypatch.setenv(config.ENV_WORKERS, "4")
    assert config.workers() == 4
    assert config.workers(2) == 2


def test_workers_junk_degrades_to_serial(monkeypatch):
    monkeypatch.setenv(config.ENV_WORKERS, "many")
    assert config.workers() == 0


def test_sweep_cache_precedence(monkeypatch, tmp_path):
    assert config.sweep_cache() == Path.home() / ".cache" / "repro-southwell"
    monkeypatch.setenv(config.ENV_SWEEP_CACHE, str(tmp_path / "env"))
    assert config.sweep_cache() == tmp_path / "env"
    assert config.sweep_cache(tmp_path / "arg") == tmp_path / "arg"


# ----------------------------------------------------------------------
# REPRO_SETUP_CACHE spellings
# ----------------------------------------------------------------------
def test_setup_cache_default_is_off():
    assert config.setup_cache_spec() is None
    assert config.setup_cache_dir() is None


@pytest.mark.parametrize("raw", ["", "0", "off", "OFF", "false", "no"])
def test_setup_cache_off_spellings(monkeypatch, raw):
    monkeypatch.setenv(config.ENV_SETUP_CACHE, raw)
    assert config.setup_cache_spec() is None
    assert config.setup_cache_dir() is None


@pytest.mark.parametrize("raw", ["1", "on", "true", "YES"])
def test_setup_cache_on_spellings_mean_default_dir(monkeypatch, raw):
    monkeypatch.setenv(config.ENV_SETUP_CACHE, raw)
    assert config.setup_cache_spec() == "1"
    assert config.setup_cache_dir() == \
        Path.home() / ".cache" / "repro-southwell" / "setup"


def test_setup_cache_other_value_is_a_directory(monkeypatch, tmp_path):
    monkeypatch.setenv(config.ENV_SETUP_CACHE, str(tmp_path))
    assert config.setup_cache_spec() == str(tmp_path)
    assert config.setup_cache_dir() == tmp_path


def test_setup_cache_explicit_beats_env(monkeypatch, tmp_path):
    monkeypatch.setenv(config.ENV_SETUP_CACHE, "1")
    assert config.setup_cache_spec("off") is None
    assert config.setup_cache_dir(tmp_path / "arg") == tmp_path / "arg"


# ----------------------------------------------------------------------
# REPRO_TRACE spellings
# ----------------------------------------------------------------------
@pytest.mark.parametrize("raw", ["", "0", "off", "OFF", "false", "no"])
def test_trace_off_spellings(monkeypatch, raw):
    monkeypatch.setenv(config.ENV_TRACE, raw)
    assert config.trace_spec() is None
    assert config.trace_active() is False
    assert config.trace_dir() is None


@pytest.mark.parametrize("raw", ["1", "on", "true", "YES"])
def test_trace_on_spellings_mean_in_memory(monkeypatch, raw):
    monkeypatch.setenv(config.ENV_TRACE, raw)
    assert config.trace_spec() == "1"
    assert config.trace_active() is True
    assert config.trace_dir() is None                # in-memory, no files


def test_trace_other_value_is_a_directory(monkeypatch, tmp_path):
    monkeypatch.setenv(config.ENV_TRACE, str(tmp_path))
    assert config.trace_spec() == str(tmp_path)
    assert config.trace_active() is True
    assert config.trace_dir() == tmp_path


def test_trace_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(config.ENV_TRACE, "1")
    assert config.trace_spec("off") is None
    assert config.trace_spec("traces") == "traces"


def test_trace_default_is_off():
    assert config.trace_spec() is None
    assert config.trace_active() is False


# ----------------------------------------------------------------------
# describe(): the `repro config` report
# ----------------------------------------------------------------------
def test_describe_lists_every_knob():
    out = config.describe()
    for knob in config.KNOBS:
        assert knob.env in out
    assert "precedence" in out


def test_describe_shows_env_sources(monkeypatch, tmp_path):
    monkeypatch.setenv(config.ENV_WORKERS, "8")
    monkeypatch.setenv(config.ENV_TRACE, str(tmp_path / "tr"))
    out = config.describe()
    assert "8" in out
    assert str(tmp_path / "tr") in out
    assert "[environment" in out


def test_describe_sees_programmatic_runtime_override():
    from repro.runtime import flatplane

    with flatplane.use_runtime("object"):
        assert "set_runtime_mode()" in config.describe()
    assert "set_runtime_mode()" not in config.describe()


def test_runtime_mode_override_beats_env(monkeypatch):
    from repro.runtime import flatplane

    monkeypatch.setenv(config.ENV_RUNTIME, "flat")
    assert flatplane.runtime_mode() == "flat"
    with flatplane.use_runtime("object"):
        assert flatplane.runtime_mode() == "object"  # override wins
    assert flatplane.runtime_mode() == "flat"        # restored


def test_knobs_are_frozen_and_documented():
    for knob in config.KNOBS:
        assert knob.env.startswith("REPRO_")
        assert knob.doc
        with pytest.raises(Exception):
            knob.env = "X"


# ----------------------------------------------------------------------
# multigrid knobs (REPRO_MG_*)
# ----------------------------------------------------------------------
def test_mg_smoother_precedence(monkeypatch):
    assert config.mg_smoother() == "ds"              # default
    monkeypatch.setenv(config.ENV_MG_SMOOTHER, "scalar-ds")
    assert config.mg_smoother() == "scalar-ds"       # env
    assert config.mg_smoother("gs") == "gs"          # explicit wins


def test_mg_smoother_junk_env_degrades_but_explicit_raises(monkeypatch):
    monkeypatch.setenv(config.ENV_MG_SMOOTHER, "sor")
    assert config.mg_smoother() == "ds"
    with pytest.raises(ValueError):
        config.mg_smoother("sor")


def test_mg_budget_precedence(monkeypatch):
    assert config.mg_budget() == pytest.approx(1.0)
    monkeypatch.setenv(config.ENV_MG_BUDGET, "0.5")
    assert config.mg_budget() == pytest.approx(0.5)
    assert config.mg_budget(2.0) == pytest.approx(2.0)
    monkeypatch.setenv(config.ENV_MG_BUDGET, "-1")   # junk env degrades
    assert config.mg_budget() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        config.mg_budget(0.0)                        # explicit junk raises


def test_mg_drop_tol_precedence(monkeypatch):
    assert config.mg_drop_tol() == 0.0
    monkeypatch.setenv(config.ENV_MG_DROP_TOL, "0.1")
    assert config.mg_drop_tol() == pytest.approx(0.1)
    assert config.mg_drop_tol(0.12) == pytest.approx(0.12)
    monkeypatch.setenv(config.ENV_MG_DROP_TOL, "nope")
    assert config.mg_drop_tol() == 0.0


def test_mg_cycles_precedence(monkeypatch):
    assert config.mg_cycles() == 9
    monkeypatch.setenv(config.ENV_MG_CYCLES, "4")
    assert config.mg_cycles() == 4
    assert config.mg_cycles(2) == 2
    monkeypatch.setenv(config.ENV_MG_CYCLES, "0")
    assert config.mg_cycles() == 9


def test_mg_levels_precedence(monkeypatch):
    assert config.mg_levels() is None                # full hierarchy
    monkeypatch.setenv(config.ENV_MG_LEVELS, "3")
    assert config.mg_levels() == 3
    assert config.mg_levels(2) == 2
    monkeypatch.setenv(config.ENV_MG_LEVELS, "all")
    assert config.mg_levels() is None
    monkeypatch.setenv(config.ENV_MG_LEVELS, "1")    # junk env degrades
    assert config.mg_levels() is None
    with pytest.raises(ValueError):
        config.mg_levels(1)
