"""Suite-wide sanity: every member loads, is SPD, and carries metadata.

The expensive behaviour checks (the †-pattern) live in the benches; this
is the fast structural layer run on tiny instances of every member.
"""

import numpy as np
import pytest

from repro.matrices.suite import SUITE_NAMES, load_problem


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_member_small_instance(name):
    prob = load_problem(name, size_scale=0.03)
    A = prob.matrix
    # unit diagonal after the paper's scaling
    assert np.allclose(A.diagonal(), 1.0)
    # symmetric and positive definite
    d = A.to_dense()
    assert np.allclose(d, d.T, atol=1e-10)
    assert np.linalg.eigvalsh(0.5 * (d + d.T)).min() > 0
    # metadata for the Table 1 bench
    assert prob.meta["analog_of"] == name
    assert prob.meta["paper_n"] > 0
    assert prob.meta["paper_nnz"] > prob.meta["paper_n"]


def test_elasticity_members_are_non_dominant():
    """The hard members must carry the Block-Jacobi-hostile signature:
    off-diagonal mass above the (unit) diagonal."""
    prob = load_problem("Emilia_923", size_scale=0.05)
    d = prob.matrix.to_dense()
    off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
    assert np.median(off) > 1.2


def test_af_member_is_weakly_dominant():
    """af_5_k101's analog (plain Poisson) must stay diagonally dominant —
    that is why Block Jacobi never diverges on it."""
    prob = load_problem("af_5_k101", size_scale=0.05)
    d = prob.matrix.to_dense()
    off = np.abs(d).sum(axis=1) - np.abs(np.diag(d))
    assert np.max(off) <= 1.0 + 1e-12


def test_size_scale_changes_size_monotonically():
    small = load_problem("msdoor", size_scale=0.03)
    large = load_problem("msdoor", size_scale=0.08)
    assert large.n > small.n


def test_seed_changes_instance():
    a = load_problem("msdoor", size_scale=0.05, seed=0)
    b = load_problem("msdoor", size_scale=0.05, seed=1)
    assert a.n == b.n or True
    assert not (a.matrix == b.matrix)
