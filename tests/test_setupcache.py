"""Tests for the persistent setup-plane cache (``repro.setupcache``).

Contract under test: a cache hit must be *indistinguishable* from a
recompute — same partition bytes, same permuted matrix, same coupling
blocks, same local-solver action — and the key must retire cached
products whenever anything that computed them could have changed.
"""

import os
import pickle

import numpy as np
import pytest

from repro import config
from repro import setupcache
from repro.api import solve
from repro.matrices.poisson import poisson_2d
from repro.setupcache import get_setup, matrix_digest, setup_key
from repro.sparsela import CSRMatrix
from repro.trace import RunTracer


@pytest.fixture(autouse=True)
def _no_env_cache(monkeypatch):
    """Tests control the cache via ``cache_dir=``, never a leaked env."""
    monkeypatch.delenv(config.ENV_SETUP_CACHE, raising=False)


@pytest.fixture(scope="module")
def A():
    return poisson_2d(20)


def _events(tracer):
    return [(e.get("ev"), e.get("name") or e.get("hit"))
            for e in tracer.iter_events()
            if e.get("ev") in ("phase", "setup_cache")]


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def test_key_is_stable(A):
    assert setup_key(A, 4) == setup_key(A, 4)


@pytest.mark.parametrize("kwargs", [
    {"n_parts": 8},
    {"n_parts": 4, "method": "strided"},
    {"n_parts": 4, "seed": 1},
    {"n_parts": 4, "local_solver": "direct"},
    {"n_parts": 4, "n_sweeps": 2},
])
def test_key_varies_with_every_parameter(A, kwargs):
    assert setup_key(A, **kwargs) != setup_key(A, 4)


def test_key_varies_with_matrix_content(A):
    B = CSRMatrix(A.indptr.copy(), A.indices.copy(), A.data.copy(), A.shape)
    assert setup_key(B, 4) == setup_key(A, 4)      # content, not identity
    B.data[0] += 1e-12
    assert setup_key(B, 4) != setup_key(A, 4)
    assert matrix_digest(B) != matrix_digest(A)


def test_key_includes_code_digest(A, monkeypatch):
    base = setup_key(A, 4)
    monkeypatch.setattr(setupcache, "setup_code_digest", lambda: "edited")
    assert setup_key(A, 4) != base


def test_code_digest_covers_the_setup_sources():
    import repro

    root = os.path.dirname(repro.__file__)
    for entry in setupcache._SETUP_SOURCES:
        assert os.path.exists(os.path.join(root, entry)), entry
    digest = setupcache.setup_code_digest()
    assert digest == setupcache.setup_code_digest()  # lru-cached, stable
    assert len(digest) == 64


# ----------------------------------------------------------------------
# round-trip identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("local_solver", ["gs", "direct"])
def test_hit_is_indistinguishable_from_recompute(A, tmp_path, local_solver):
    part1, sys1 = get_setup(A, 6, local_solver=local_solver,
                            cache_dir=tmp_path)
    part2, sys2 = get_setup(A, 6, local_solver=local_solver,
                            cache_dir=tmp_path)

    assert np.array_equal(part1.parts, part2.parts)
    assert np.array_equal(part1.perm, part2.perm)
    assert np.array_equal(part1.offsets, part2.offsets)
    assert [list(n) for n in part1.neighbors] == \
        [list(n) for n in part2.neighbors]

    assert np.array_equal(sys1.A.data, sys2.A.data)
    assert np.array_equal(sys1.A.indices, sys2.A.indices)
    assert np.array_equal(sys1.A.indptr, sys2.A.indptr)
    assert sorted(sys1.couplings) == sorted(sys2.couplings)
    for pq in sys1.couplings:
        assert np.array_equal(sys1.couplings[pq].data, sys2.couplings[pq].data)
        assert np.array_equal(sys1.couplings[pq].indices,
                              sys2.couplings[pq].indices)
    assert sorted(sys1.beta) == sorted(sys2.beta)
    for qp in sys1.beta:
        assert np.array_equal(sys1.beta[qp], sys2.beta[qp])
    # the re-factorized local solvers must act identically
    rng = np.random.default_rng(0)
    for p, (s1, s2) in enumerate(zip(sys1.local_solvers, sys2.local_solvers)):
        assert np.array_equal(sys1.diag_blocks[p].data, sys2.diag_blocks[p].data)
        r = rng.standard_normal(sys1.diag_blocks[p].n_rows)
        assert np.array_equal(s1.apply(r), s2.apply(r))


def test_cold_call_writes_one_pickle(A, tmp_path):
    get_setup(A, 4, cache_dir=tmp_path)
    files = list(tmp_path.glob("*.pkl"))
    assert len(files) == 1
    assert files[0].stem == setup_key(A, 4)


def test_cache_off_by_default_writes_nothing(A, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    get_setup(A, 4)                                 # no cache_dir, no env
    assert list(tmp_path.rglob("*.pkl")) == []


def test_corrupt_entry_degrades_to_recompute(A, tmp_path):
    from repro.setupcache import _load

    key = setup_key(A, 4)
    (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
    part, system = get_setup(A, 4, cache_dir=tmp_path)
    assert part.n_parts == 4
    # and the recompute repaired the entry (pickle + blob sidecar)
    cached_part, _ = _load(tmp_path, key)
    assert np.array_equal(cached_part.parts, part.parts)


def test_missing_blob_degrades_to_recompute(A, tmp_path):
    """A .pkl whose sidecar vanished must read as a miss, not a crash."""
    get_setup(A, 4, cache_dir=tmp_path)
    key = setup_key(A, 4)
    (tmp_path / f"{key}.blob").unlink()
    part, system = get_setup(A, 4, cache_dir=tmp_path)
    assert part.n_parts == 4


# ----------------------------------------------------------------------
# trace events
# ----------------------------------------------------------------------
def test_cold_trace_miss_then_compute_phases(A, tmp_path):
    tr = RunTracer()
    get_setup(A, 4, tracer=tr, cache_dir=tmp_path)
    ev = _events(tr)
    assert ("setup_cache", False) in ev
    names = [n for k, n in ev if k == "phase"]
    assert "setup:cache_load" in names
    assert "setup:partition" in names
    assert "setup:block_build" in names


def test_warm_trace_hit_skips_compute_phases(A, tmp_path):
    get_setup(A, 4, cache_dir=tmp_path)
    tr = RunTracer()
    get_setup(A, 4, tracer=tr, cache_dir=tmp_path)
    ev = _events(tr)
    assert ("setup_cache", True) in ev
    names = [n for k, n in ev if k == "phase"]
    assert "setup:partition" not in names
    assert "setup:block_build" not in names


def test_no_cache_trace_has_compute_phases_only(A):
    tr = RunTracer()
    get_setup(A, 4, tracer=tr)
    ev = _events(tr)
    assert all(k != "setup_cache" for k, _ in ev)
    names = [n for k, n in ev if k == "phase"]
    assert names == ["setup:partition", "setup:block_build"]


def test_traceagg_counts_hits_and_misses(A, tmp_path):
    from repro.analysis.traceagg import format_trace_summary, summarize_trace

    tr = RunTracer()
    get_setup(A, 4, tracer=tr, cache_dir=tmp_path)
    get_setup(A, 4, tracer=tr, cache_dir=tmp_path)
    path = tmp_path / "t.jsonl"
    tr.save_jsonl(path)
    summary = summarize_trace(path)
    assert summary.setup_cache_misses == 1
    assert summary.setup_cache_hits == 1
    assert "setup cache: 1 hit(s), 1 miss(es)" in format_trace_summary(summary)


# ----------------------------------------------------------------------
# end-to-end through the front door
# ----------------------------------------------------------------------
def test_solve_identical_cold_vs_warm(A, tmp_path, monkeypatch):
    monkeypatch.setenv(config.ENV_SETUP_CACHE, str(tmp_path))
    r1 = solve(A, n_parts=4, max_steps=5)
    r2 = solve(A, n_parts=4, max_steps=5)
    assert np.array_equal(r1.x, r2.x)
    assert r1.history.residual_norms == r2.history.residual_norms
    assert r1.comm_cost == r2.comm_cost
    assert list(tmp_path.glob("*.pkl"))             # the cache was used


def test_solve_matches_uncached_run(A, tmp_path, monkeypatch):
    plain = solve(A, n_parts=4, max_steps=5)
    monkeypatch.setenv(config.ENV_SETUP_CACHE, str(tmp_path))
    solve(A, n_parts=4, max_steps=5)                # populate
    warm = solve(A, n_parts=4, max_steps=5)         # hit
    assert np.array_equal(plain.x, warm.x)
    assert plain.history.residual_norms == warm.history.residual_norms


# ----------------------------------------------------------------------
# in-process cache hygiene (runners LRU + clear hook)
# ----------------------------------------------------------------------
def test_runners_setup_lru_is_bounded():
    from repro.experiments import runners

    runners.clear_run_caches()
    for p in range(2, 2 + runners._SETUP_LRU_MAX + 3):
        runners._problem_and_system("af_5_k101", p, size_scale=0.02)
    assert len(runners._SETUP_LRU) == runners._SETUP_LRU_MAX
    runners.clear_run_caches()
    assert len(runners._SETUP_LRU) == 0


def test_clear_run_caches_keep_setup():
    from repro.experiments import runners

    runners.clear_run_caches()
    runners._problem_and_system("af_5_k101", 4, size_scale=0.02)
    runners.clear_run_caches(keep_setup=True)
    assert len(runners._SETUP_LRU) == 1
    runners.clear_run_caches()
    assert len(runners._SETUP_LRU) == 0


def test_run_method_results_survive_cache_round_trip(tmp_path, monkeypatch):
    from repro.experiments.runners import clear_run_caches, run_method

    monkeypatch.setenv(config.ENV_SETUP_CACHE, str(tmp_path))
    clear_run_caches()
    r1 = run_method("af_5_k101", "distributed-southwell", 8,
                    size_scale=0.05, max_steps=5)
    clear_run_caches()                              # force disk round trip
    r2 = run_method("af_5_k101", "distributed-southwell", 8,
                    size_scale=0.05, max_steps=5)
    assert np.array_equal(r1.x, r2.x)
    clear_run_caches()
