"""Cross-implementation equivalences at subdomain size 1.

With one row per process (a 'strided' partition into n parts, identity
permutation) the block methods must reproduce their scalar counterparts:

- Block Jacobi ≡ scalar Jacobi (a 1×1 GS solve is exact);
- block Parallel Southwell ≡ scalar Parallel Southwell;
- block Distributed Southwell ≡ scalar Distributed Southwell.

These are the strongest whole-pipeline tests in the suite: they exercise
partitioning, block data construction, the message machinery and the
estimate bookkeeping against independent vectorised implementations.
"""

import numpy as np
import pytest

from repro.core import (
    DistributedSouthwell,
    ParallelSouthwell,
    ScalarDistributedSouthwell,
    ScalarParallelSouthwell,
)
from repro.core.blockdata import build_block_system
from repro.partition import partition
from repro.solvers.block_jacobi import BlockJacobi
from repro.solvers.scalar import jacobi_trace


@pytest.fixture(scope="module")
def scalar_system(fem_300):
    n = fem_300.n_rows
    part = partition(fem_300, n, method="strided")
    assert np.array_equal(part.perm, np.arange(n))
    system = build_block_system(fem_300, part)
    rng = np.random.default_rng(17)
    x0 = rng.uniform(-1, 1, n)
    b = np.zeros(n)
    x0 = x0 / np.linalg.norm(fem_300.matvec(x0))
    return system, fem_300, x0, b


def test_block_jacobi_equals_scalar_jacobi(scalar_system):
    system, A, x0, b = scalar_system
    bj = BlockJacobi(system)
    hist = bj.run(x0, b, max_steps=6)
    ref = jacobi_trace(A, x0, b, 6)
    assert np.allclose(hist.residual_norms, ref.residual_norms, atol=1e-12)


def test_block_ps_equals_scalar_ps(scalar_system):
    system, A, x0, b = scalar_system
    blk = ParallelSouthwell(system)
    blk.setup(x0, b)
    sc = ScalarParallelSouthwell(A)
    sc.setup(x0, b)
    for k in range(12):
        n_blk = blk.step()
        info = sc.step()
        assert n_blk == info.n_relaxed, f"step {k}"
        assert np.allclose(np.concatenate(blk.r_blocks), sc.r, atol=1e-12)


def test_block_ds_equals_scalar_ds(scalar_system):
    system, A, x0, b = scalar_system
    blk = DistributedSouthwell(system)
    blk.setup(x0, b)
    sc = ScalarDistributedSouthwell(A)
    sc.setup(x0, b)
    for k in range(12):
        n_blk = blk.step()
        info = sc.step()
        assert n_blk == info.n_relaxed, f"step {k}"
        assert np.allclose(np.concatenate(blk.r_blocks), sc.r, atol=1e-12)


def test_block_ds_matches_scalar_message_counts(scalar_system):
    """Solve-message counts agree exactly; residual (deadlock) messages
    agree too since both implementations replay the same protocol."""
    from repro.runtime import CATEGORY_RESIDUAL, CATEGORY_SOLVE

    system, A, x0, b = scalar_system
    blk = DistributedSouthwell(system)
    blk.setup(x0, b)
    sc = ScalarDistributedSouthwell(A)
    sc.setup(x0, b)
    for _ in range(8):
        blk.step()
        sc.step()
    stats = blk.engine.stats
    assert stats.category_msgs.get(CATEGORY_SOLVE, 0) == sc.solve_messages
    assert (stats.category_msgs.get(CATEGORY_RESIDUAL, 0)
            == sc.residual_messages)
