"""Identity and mechanics tests for the shm execution plane (§5.12).

``REPRO_RUNTIME=shm`` runs the flat plane's per-rank kernels on real
forked worker processes over a shared-memory arena.  Its contract is the
same strict one the flat plane carries against the object plane:
**bit-identical** convergence histories and solutions, **byte-identical**
``MessageStats`` — including under a seeded lossy ``FaultPlan`` — for
every method that supports the flat path.  These tests pin that
contract, the graceful ``shm-unavailable`` degradation (both branches),
the int32 slab-index fast path, the worker-count knob, the pool
mechanics, and the optional mpi4py transport's import gating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config as _config
from repro.api import solve
from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.faults import FaultPlan
from repro.matrices.poisson import poisson_2d
from repro.runtime import use_runtime
from repro.runtime.pool import ShmUnavailable, rank_bounds, shm_available
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import symmetric_unit_diagonal_scale

from tests.test_backends import SEED_DS_DIGEST, _ds_history_digest
from tests.test_runtime_fastpath import _run, _setup_method, _small_system

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory / fork unavailable here")

_METHODS = [BlockJacobi, ParallelSouthwell, DistributedSouthwell]

#: a seeded lossy plan exercising drops, duplicates and reordering —
#: the fate stream is part of the identity contract
LOSSY_PLAN = FaultPlan.uniform(drop=0.1, duplicate=0.05, reorder=0.1,
                               seed=11)


@pytest.fixture
def two_workers(monkeypatch):
    """Force a 2-worker pool so cross-rank ownership is exercised even
    on single-core runners (explicit counts are honored as-is)."""
    monkeypatch.setenv("REPRO_WORKERS", "2")


def _assert_identical(m_a, h_a, m_b, h_b):
    """The full flat-plane identity bar: histories, solution, stats."""
    assert np.array_equal(np.asarray(h_a.residual_norms),
                          np.asarray(h_b.residual_norms))
    assert h_a.relaxations == h_b.relaxations
    assert h_a.times == h_b.times
    assert h_a.comm_costs == h_b.comm_costs
    np.testing.assert_array_equal(m_a.solution(), m_b.solution())
    sa, sb = m_a.engine.stats, m_b.engine.stats
    assert sa.total_messages == sb.total_messages
    assert sa.total_bytes == sb.total_bytes
    assert sa.category_msgs == sb.category_msgs
    assert sa.category_bytes == sb.category_bytes
    assert sa.elapsed_time() == sb.elapsed_time()
    assert sa.communication_cost() == sb.communication_cost()
    assert len(sa.steps) == len(sb.steps)
    for a, b in zip(sa.steps, sb.steps):
        np.testing.assert_array_equal(a.msgs, b.msgs)
        np.testing.assert_array_equal(a.nbytes, b.nbytes)
        np.testing.assert_array_equal(a.flops, b.flops)
        np.testing.assert_array_equal(a.recvs, b.recvs)
        assert a.category_msgs == b.category_msgs
        assert a.time == b.time
    assert m_a.total_relaxations == m_b.total_relaxations


# ----------------------------------------------------------------------
# pinned seed behaviour
# ----------------------------------------------------------------------
@needs_shm
def test_seed_ds_digest_shm_path(two_workers):
    with use_runtime("shm"):
        assert _ds_history_digest() == SEED_DS_DIGEST


# ----------------------------------------------------------------------
# cross-plane identity: object vs flat vs shm
# ----------------------------------------------------------------------
@needs_shm
@pytest.mark.parametrize("cls", _METHODS)
def test_shm_plane_identical_to_flat(cls, two_workers):
    m_f, h_f = _run(cls, "flat")
    m_s, h_s = _run(cls, "shm")
    assert m_s._use_flat and m_s.degraded_reason is None
    _assert_identical(m_f, h_f, m_s, h_s)


@needs_shm
@pytest.mark.parametrize("cls", _METHODS)
def test_shm_plane_identical_to_object(cls, two_workers):
    m_o, h_o = _run(cls, "object")
    m_s, h_s = _run(cls, "shm")
    assert not m_o._use_flat
    _assert_identical(m_o, h_o, m_s, h_s)


@needs_shm
@pytest.mark.parametrize("cls", _METHODS)
def test_shm_plane_identical_under_lossy_faults(cls, two_workers):
    m_f, h_f = _run(cls, "flat", faults=LOSSY_PLAN)
    m_s, h_s = _run(cls, "shm", faults=LOSSY_PLAN)
    assert m_s.degraded_reason is None
    _assert_identical(m_f, h_f, m_s, h_s)


@needs_shm
def test_solution_readable_after_shm_teardown(two_workers):
    """Post-run reads go through re-homed views; the run's teardown must
    move the state back off the released segment (regression: reading
    ``solution()`` after ``run()`` once hit unmapped pages)."""
    m, h = _run(DistributedSouthwell, "shm")
    x = m.solution()
    assert np.isfinite(x).all()
    assert np.isfinite(m.norms).all()
    m2, _ = _run(DistributedSouthwell, "flat")
    np.testing.assert_array_equal(x, m2.solution())


# ----------------------------------------------------------------------
# graceful degradation: both branches
# ----------------------------------------------------------------------
def _force_unavailable(monkeypatch):
    import repro.runtime.shmplane as shmplane

    def boom(*args, **kwargs):
        raise ShmUnavailable("forced by test")

    monkeypatch.setattr(shmplane, "ShmExecutionPlane", boom)


def test_shm_unavailable_degrades_to_flat(monkeypatch, two_workers):
    _force_unavailable(monkeypatch)
    m_s, h_s = _run(DistributedSouthwell, "shm")
    assert m_s.degraded_reason == "shm-unavailable"
    assert m_s._shm is None and m_s._use_flat
    m_f, h_f = _run(DistributedSouthwell, "flat")
    _assert_identical(m_f, h_f, m_s, h_s)


def test_api_reports_shm_degradation(monkeypatch):
    _force_unavailable(monkeypatch)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    A = symmetric_unit_diagonal_scale(poisson_2d(16)).matrix
    res = solve(A, n_parts=4, max_steps=5, runtime="shm", seed=0)
    assert res.degraded_reason == "shm-unavailable"
    assert not res.degraded          # results are still exact
    flat = solve(A, n_parts=4, max_steps=5, runtime="flat", seed=0)
    assert flat.degraded_reason is None
    assert res.history.residual_norms == flat.history.residual_norms


@needs_shm
def test_api_shm_run_not_degraded(two_workers):
    A = symmetric_unit_diagonal_scale(poisson_2d(16)).matrix
    res = solve(A, n_parts=4, max_steps=5, runtime="shm", seed=0)
    assert res.degraded_reason is None and not res.degraded
    flat = solve(A, n_parts=4, max_steps=5, runtime="flat", seed=0)
    assert res.history.residual_norms == flat.history.residual_norms


# ----------------------------------------------------------------------
# int32 slab-index fast path
# ----------------------------------------------------------------------
def test_int32_index_fast_path_small_problem():
    m = _setup_method(DistributedSouthwell, mode="flat")
    plane = m.engine.flat
    assert plane.idx_dtype is np.int32
    for p in range(m.system.n_parts):
        assert m._out_eids[p].dtype == np.int32
        assert m._grows_flat[p].dtype == np.int32
    assert m._sid_slabpos.dtype == np.int32
    # header-row and ghost-scatter plans (the PR 7 extension): the Γ/Γ̃
    # slab indices and the z-span bounds follow the plane dtype too
    assert m._nbr_off.dtype == np.int32
    assert m._nbr_flat.dtype == np.int32
    assert m._slab_owner.dtype == np.int32
    assert m._eid_pos.dtype == np.int32
    assert m._zspan_lo.dtype == np.int32
    assert m._zspan_hi.dtype == np.int32
    assert m._z2g.dtype == np.int32


def test_int32_and_int64_paths_agree(monkeypatch):
    import repro.runtime.flatplane as fp
    m32, h32 = _run(DistributedSouthwell, "flat")
    monkeypatch.setattr(fp, "_INT32_LIMIT", 0)   # force the int64 path
    m64, h64 = _run(DistributedSouthwell, "flat")
    assert m64.engine.flat.idx_dtype is np.int64
    _assert_identical(m32, h32, m64, h64)


# ----------------------------------------------------------------------
# knobs
# ----------------------------------------------------------------------
def test_shm_in_valid_runtime_modes():
    assert "shm" in _config.VALID_RUNTIME_MODES
    assert _config.runtime("shm") == "shm"


def test_shm_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    import os
    assert _config.shm_workers() == max(1, os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert _config.shm_workers() == 2          # env honored as-is
    assert _config.shm_workers(3) == 3         # explicit beats env
    monkeypatch.setenv("REPRO_WORKERS", "0")
    assert _config.shm_workers() >= 1          # serial sweep != no ranks


def test_describe_mentions_shm():
    assert "shm" in _config.describe()


# ----------------------------------------------------------------------
# pool / arena mechanics
# ----------------------------------------------------------------------
def test_rank_bounds_partition_all_ranks():
    sizes = np.array([5, 1, 1, 1, 8, 2, 2, 4])
    for w in (1, 2, 3, 8, 20):
        bounds = rank_bounds(sizes, w)
        assert bounds[0][0] == 0 and bounds[-1][1] == len(sizes)
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c and a <= b and c <= d
        total = sum(hi - lo for lo, hi in bounds)
        assert total == len(sizes)


def test_rank_bounds_balances_rows():
    sizes = np.full(16, 10)
    bounds = rank_bounds(sizes, 4)
    rows = [int(sizes[lo:hi].sum()) for lo, hi in bounds]
    assert max(rows) - min(rows) <= 10


def test_shm_available_is_bool_and_stable():
    a, b = shm_available(), shm_available()
    assert isinstance(a, bool) and a == b


@needs_shm
def test_arena_overflow_raises_shm_unavailable():
    from repro.runtime.shmplane import ShmArena
    arena = ShmArena(256)
    arena.take(16, np.float64)
    with pytest.raises(ShmUnavailable):
        arena.take(10_000, np.float64)
    arena.release()


def test_private_arena_copies():
    from repro.runtime.shmplane import PRIVATE_ARENA
    src = np.arange(5, dtype=np.float64)
    out = PRIVATE_ARENA.move(src)
    assert np.array_equal(out, src) and out is not src
    z = PRIVATE_ARENA.take(4, np.int64)
    assert z.shape == (4,) and not z.any()


# ----------------------------------------------------------------------
# optional mpi4py transport: import gating
# ----------------------------------------------------------------------
def test_mpiplane_imports_without_mpi4py():
    from repro.runtime import mpiplane
    assert isinstance(mpiplane.mpi_available(), bool)
    if mpiplane.mpi_available():
        pytest.skip("mpi4py present: constructor gating not reachable")
    with pytest.raises(RuntimeError, match="mpi4py"):
        mpiplane.MpiEdgePlane([0], [4])


def test_mpiplane_validates_shapes():
    from repro.runtime import mpiplane
    if not mpiplane.mpi_available():
        pytest.skip("needs mpi4py")
    with pytest.raises(ValueError):
        mpiplane.MpiEdgePlane([0, 1], [4], comm=None)
