"""Tests for the classic-method traces (GS, Jacobi, Multicolor GS)."""

import numpy as np
import pytest

from repro.partition import greedy_coloring
from repro.solvers.scalar import (
    gauss_seidel_trace,
    jacobi_trace,
    multicolor_gs_trace,
)
from repro.sparsela.kernels import gauss_seidel_sweep_reference


@pytest.fixture
def state(poisson_100):
    rng = np.random.default_rng(21)
    n = poisson_100.n_rows
    b = rng.uniform(-1, 1, n)
    b /= np.linalg.norm(b)
    return poisson_100, np.zeros(n), b


def test_gs_trace_endpoints_match_sweep_kernel(state):
    A, x0, b = state
    hist = gauss_seidel_trace(A, x0, b, 2)
    x = gauss_seidel_sweep_reference(A, x0, b)
    x = gauss_seidel_sweep_reference(A, x, b)
    assert np.isclose(hist.residual_norms[-1],
                      np.linalg.norm(b - A.matvec(x)), atol=1e-10)
    assert hist.relaxations[-1] == 200


def test_gs_trace_record_every(state):
    A, x0, b = state
    full = gauss_seidel_trace(A, x0, b, 1)
    thin = gauss_seidel_trace(A, x0, b, 1, record_every=10)
    assert len(full) == 101
    assert len(thin) == 11
    assert np.isclose(full.residual_norms[-1], thin.residual_norms[-1])


def test_gs_incremental_norm_is_exact_mid_trace(state):
    """The per-relaxation norm tracking must agree with recomputation at an
    arbitrary point inside the sweep, not just at sweep boundaries."""
    A, x0, b = state
    hist = gauss_seidel_trace(A, x0, b, 1)
    stop = 37
    x = np.array(x0)
    diag = A.diagonal()
    for i in range(stop):
        r_i = b[i] - float(A.to_dense()[i] @ x)
        x[i] += r_i / diag[i]
    assert np.isclose(hist.residual_norms[stop],
                      np.linalg.norm(b - A.matvec(x)), atol=1e-10)


def test_jacobi_trace_matches_formula(state):
    A, x0, b = state
    hist = jacobi_trace(A, x0, b, 3)
    x = np.array(x0)
    d = A.diagonal()
    for _ in range(3):
        x = x + (b - A.matvec(x)) / d
    assert np.isclose(hist.residual_norms[-1],
                      np.linalg.norm(b - A.matvec(x)), atol=1e-12)
    assert hist.parallel_steps == [0, 1, 2, 3]
    assert hist.relaxations == [0, 100, 200, 300]


def test_damped_jacobi(state):
    A, x0, b = state
    plain = jacobi_trace(A, x0, b, 5)
    damped = jacobi_trace(A, x0, b, 5, omega=0.67)
    assert plain.residual_norms[-1] != damped.residual_norms[-1]


def test_mcgs_equivalent_accuracy_to_gs_class_structure(state):
    """MC GS relaxes every row once per sweep, in color order; the result
    is a valid GS sweep in the color-permuted order."""
    A, x0, b = state
    colors = greedy_coloring(A)
    hist = multicolor_gs_trace(A, x0, b, 1, colors=colors)
    order = np.argsort(colors, kind="stable")
    x = gauss_seidel_sweep_reference(A, x0, b, order=order)
    assert np.isclose(hist.residual_norms[-1],
                      np.linalg.norm(b - A.matvec(x)), atol=1e-10)


def test_mcgs_parallel_steps_count_color_classes(state):
    A, x0, b = state
    colors = greedy_coloring(A)
    n_colors = int(colors.max()) + 1
    hist = multicolor_gs_trace(A, x0, b, 2, colors=colors)
    assert hist.parallel_steps[-1] == 2 * n_colors
    assert hist.relaxations[-1] == 2 * A.n_rows


def test_all_methods_reduce_residual(state):
    A, x0, b = state
    for hist in (gauss_seidel_trace(A, x0, b, 1),
                 jacobi_trace(A, x0, b, 1),
                 multicolor_gs_trace(A, x0, b, 1)):
        assert hist.residual_norms[-1] < hist.residual_norms[0]
