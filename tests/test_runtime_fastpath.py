"""Equivalence and accounting tests for the flat-buffer runtime.

The flat-buffer message plane (DESIGN.md §5.8) is the default for the
paper's synchronous-epoch runs, so its contract is strict: **bit-for-bit**
the same convergence history and **byte-for-byte** the same message
statistics as the object plane, on every method that supports it.  These
tests pin that contract:

- the seed DS history digest reproduces under the object path, the flat
  path, and (when available) the flat path on the numba kernel backend;
- full stats equality — per-step message/byte/flop/receive arrays and
  category splits — across both planes for BJ, PS and DS;
- the cumulative metrics are O(1) (they never walk the snapshot list);
- eligibility: delay injection, the thresholded DS variant, the PS
  piggyback ablation and ``REPRO_RUNTIME=object`` all fall back to the
  object plane;
- the flat plane's epoch discipline (visibility only after the collective
  close, collision detection, delay rejection).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.core.threshold_ds import ThresholdedDistributedSouthwell
from repro.matrices.poisson import poisson_2d
from repro.partition import partition
from repro.runtime import (
    CATEGORY_SOLVE,
    SLOT_RESIDUAL,
    SLOT_SOLVE,
    MessageStats,
    WindowSystem,
    runtime_mode,
    set_runtime_mode,
    use_runtime,
)
from repro.solvers.block_jacobi import BlockJacobi
from repro.sparsela import (
    available_backends,
    symmetric_unit_diagonal_scale,
    use_backend,
)

from tests.test_backends import SEED_DS_DIGEST, _ds_history_digest

_METHOD_CLASSES = {
    "block-jacobi": BlockJacobi,
    "parallel-southwell": ParallelSouthwell,
    "distributed-southwell": DistributedSouthwell,
}


def _small_system(side=20, n_parts=8, seed=3):
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, seed=seed)
    return A, build_block_system(A, part)


def _run(cls, mode, side=20, n_parts=8, steps=20, **kwargs):
    A, system = _small_system(side, n_parts)
    m = cls(system, **kwargs)
    rng = np.random.default_rng(7)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    with use_runtime(mode):
        hist = m.run(x0, np.zeros(A.n_rows), max_steps=steps)
    return m, hist


# ----------------------------------------------------------------------
# pinned seed behaviour across paths
# ----------------------------------------------------------------------
def test_seed_ds_digest_object_path():
    with use_runtime("object"):
        assert _ds_history_digest() == SEED_DS_DIGEST


def test_seed_ds_digest_flat_path():
    with use_runtime("flat"):
        assert _ds_history_digest() == SEED_DS_DIGEST


@pytest.mark.skipif("numba" not in available_backends(),
                    reason="numba backend not available")
def test_seed_ds_digest_flat_path_numba():
    with use_backend("numba"), use_runtime("flat"):
        assert _ds_history_digest() == SEED_DS_DIGEST


# ----------------------------------------------------------------------
# full stats equality: both planes, all three methods
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", sorted(_METHOD_CLASSES))
def test_flat_and_object_planes_identical(method):
    cls = _METHOD_CLASSES[method]
    m_obj, h_obj = _run(cls, "object")
    m_flat, h_flat = _run(cls, "flat")
    assert not m_obj._use_flat and m_flat._use_flat

    # bit-identical numerics
    assert np.array_equal(np.asarray(h_obj.residual_norms),
                          np.asarray(h_flat.residual_norms))
    assert h_obj.relaxations == h_flat.relaxations
    np.testing.assert_array_equal(m_obj.solution(), m_flat.solution())

    # byte-identical accounting
    so, sf = m_obj.engine.stats, m_flat.engine.stats
    assert so.total_messages == sf.total_messages
    assert so.total_bytes == sf.total_bytes
    assert so.category_msgs == sf.category_msgs
    assert so.category_bytes == sf.category_bytes
    assert so.elapsed_time() == sf.elapsed_time()
    assert so.communication_cost() == sf.communication_cost()
    assert len(so.steps) == len(sf.steps)
    for a, b in zip(so.steps, sf.steps):
        np.testing.assert_array_equal(a.msgs, b.msgs)
        np.testing.assert_array_equal(a.nbytes, b.nbytes)
        np.testing.assert_array_equal(a.flops, b.flops)
        np.testing.assert_array_equal(a.recvs, b.recvs)
        assert a.category_msgs == b.category_msgs
        assert a.time == b.time


def test_relax_deltas_alias_flat_mailboxes():
    """With the flat plane active the relax workspaces ARE the mailbox
    buffers — a relax writes the wire payload in place."""
    A, system = _small_system()
    ds = DistributedSouthwell(system)
    rng = np.random.default_rng(0)
    with use_runtime("flat"):
        ds.setup(rng.uniform(-1, 1, A.n_rows), np.zeros(A.n_rows))
    plane = ds.engine.flat
    assert plane is not None
    for key, eid in ds._flat_eid.items():
        assert ds._ws_delta[key] is plane.vals[eid]
    deltas = ds.relax(0)
    for q, buf in deltas.items():
        assert buf is plane.vals[ds._flat_eid[(0, int(q))]]


# ----------------------------------------------------------------------
# eligibility: who falls back to the object plane
# ----------------------------------------------------------------------
def _setup_method(cls, mode="auto", **kwargs):
    A, system = _small_system()
    m = cls(system, **kwargs)
    rng = np.random.default_rng(0)
    with use_runtime(mode):
        m.setup(rng.uniform(-1, 1, A.n_rows), np.zeros(A.n_rows))
    return m


@pytest.mark.parametrize("cls", [BlockJacobi, ParallelSouthwell,
                                 DistributedSouthwell])
def test_auto_mode_uses_flat_plane(cls):
    m = _setup_method(cls)
    assert m._use_flat and m.engine.flat is not None


def test_object_mode_forces_object_plane():
    m = _setup_method(DistributedSouthwell, mode="object")
    assert not m._use_flat and m.engine.flat is None
    assert m._ws_delta is m._ws_delta_own


def test_delay_injection_forces_object_plane():
    m = _setup_method(DistributedSouthwell, delay_probability=0.3)
    assert not m._use_flat and m.engine.flat is None


def test_thresholded_ds_forces_object_plane():
    m = _setup_method(ThresholdedDistributedSouthwell)
    assert not m._use_flat and m.engine.flat is None


def test_ps_piggyback_ablation_forces_object_plane():
    m = _setup_method(ParallelSouthwell, piggyback=False)
    assert not m._use_flat and m.engine.flat is None


def test_runtime_mode_knob():
    assert runtime_mode() in ("auto", "flat", "shm", "async", "object")
    with use_runtime("object"):
        assert runtime_mode() == "object"
        with use_runtime("flat"):
            assert runtime_mode() == "flat"
        assert runtime_mode() == "object"
    with use_runtime("shm"):
        assert runtime_mode() == "shm"
    with use_runtime("async"):
        assert runtime_mode() == "async"
    with pytest.raises(ValueError):
        set_runtime_mode("turbo")
    assert runtime_mode() in ("auto", "flat", "shm", "async", "object")


def test_runtime_mode_env_junk_falls_back_to_auto(monkeypatch):
    monkeypatch.setenv("REPRO_RUNTIME", "warp-speed")
    assert runtime_mode() == "auto"
    monkeypatch.setenv("REPRO_RUNTIME", "  FLAT ")
    assert runtime_mode() == "flat"


# ----------------------------------------------------------------------
# O(1) cumulative metrics and batched receives
# ----------------------------------------------------------------------
def test_cumulative_metrics_do_not_walk_snapshots():
    """The per-step history recording used to re-sum every snapshot each
    step (O(steps²) per run).  The cumulative metrics must now come from
    running totals: poison the snapshot list and read them anyway."""
    stats = MessageStats(4)
    expect_msgs = expect_bytes = 0
    expect_time = 0.0
    for k in range(5):
        stats.record_message(k % 4, CATEGORY_SOLVE, 100 + k)
        expect_msgs += 1
        expect_bytes += 100 + k
        stats.close_step(time=0.5 + k)
        expect_time += 0.5 + k
    stats.record_message(0, CATEGORY_SOLVE, 7)  # open step counts too
    stats.steps = None                          # would raise if walked
    assert stats.total_messages == expect_msgs + 1
    assert stats.total_bytes == expect_bytes + 7
    assert stats.elapsed_time() == expect_time
    assert stats.communication_cost() == (expect_msgs + 1) / 4


def test_elapsed_time_matches_sum_of_step_times():
    """The running total accumulates left-to-right exactly like summing
    the snapshots did, so the recorded histories are unchanged."""
    m, _ = _run(DistributedSouthwell, "object", steps=10)
    acc = 0.0
    for s in m.engine.stats.steps:
        acc += float(s.time)
    assert m.engine.stats.elapsed_time() == acc


def test_record_receives_batches_like_singles():
    a, b = MessageStats(3), MessageStats(3)
    for _ in range(5):
        a.record_receive(1)
    b.record_receives(1, 5)
    np.testing.assert_array_equal(a.current_step_arrays()[3],
                                  b.current_step_arrays()[3])


# ----------------------------------------------------------------------
# flat plane mechanics
# ----------------------------------------------------------------------
def _tiny_plane():
    ws = WindowSystem(3)
    eid_map = ws.configure_flat([(0, 1, 2, 1), (1, 0, 2, 1), (1, 2, 3, 0)])
    return ws, ws.flat, eid_map


def test_flat_put_invisible_until_epoch_close():
    ws, plane, eid_map = _tiny_plane()
    eid = eid_map[(0, 1)]
    plane.vals[eid][:] = [1.0, 2.0]
    plane.put(eid, SLOT_SOLVE, 4.0, 9.0, 48, CATEGORY_SOLVE)
    assert plane.drain(1).size == 0      # buffered, not visible
    assert ws.in_flight == 1
    ws.close_epoch()
    sids = plane.drain(1)
    assert sids.tolist() == [2 * eid + SLOT_SOLVE]
    assert plane.src_of(sids[0]) == 0
    assert plane.norm[sids[0]] == 4.0 and plane.est[sids[0]] == 9.0
    assert plane.drain(1).size == 0      # drained exactly once
    assert ws.stats.total_messages == 1
    assert ws.stats.total_bytes == 48


def test_flat_mailbox_collision_raises():
    _, plane, eid_map = _tiny_plane()
    eid = eid_map[(1, 2)]
    plane.put(eid, SLOT_SOLVE, 1.0, 0.0, 40, CATEGORY_SOLVE)
    with pytest.raises(RuntimeError, match="collision"):
        plane.put(eid, SLOT_SOLVE, 2.0, 0.0, 40, CATEGORY_SOLVE)
    # the residual slot of the same edge is a different mailbox
    plane.put(eid, SLOT_RESIDUAL, 2.0, 0.0, 24, CATEGORY_SOLVE)


def test_flat_mail_ranks_track_undrained_mail():
    ws, plane, eid_map = _tiny_plane()
    plane.put(eid_map[(0, 1)], SLOT_SOLVE, 1.0, 0.0, 48, CATEGORY_SOLVE)
    plane.put(eid_map[(1, 2)], SLOT_SOLVE, 1.0, 0.0, 56, CATEGORY_SOLVE)
    ws.close_epoch()
    assert plane.mail_ranks == [1, 2]
    plane.drain(1)
    ws.close_epoch()
    assert plane.mail_ranks == [2]


def test_configure_flat_rejects_delay_injection():
    ws = WindowSystem(2, delay_probability=0.5)
    with pytest.raises(RuntimeError, match="synchronous"):
        ws.configure_flat([(0, 1, 2, 0)])
