"""Tests for the top-level API and the DMEM_Southwell-style CLI."""

import json
import numpy as np
import pytest

from repro.api import solve
from repro.cli import main
from repro.core import DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.partition import partition
from repro.sparsela import write_matrix_market


def test_solve_returns_consistent_result(fem_300):
    res = solve(fem_300, method="distributed-southwell", n_parts=6,
                max_steps=10, seed=0, runtime="flat")
    assert res.method == "distributed-southwell"
    assert res.n_parts == 6
    assert res.parallel_steps == 10
    r = fem_300.matvec(res.x)
    assert np.isclose(np.linalg.norm(-r), res.final_norm, atol=1e-12)
    assert res.comm_cost == pytest.approx(res.solve_comm
                                          + res.residual_comm)
    assert "distributed-southwell" in res.summary()


def test_default_initial_state_norm_one(fem_300):
    res = solve(fem_300, method="block-jacobi", n_parts=4, max_steps=0,
                seed=1)
    assert np.isclose(res.history.initial_norm, 1.0, atol=1e-12)


def test_run_with_prebuilt_method(fem_300):
    part = partition(fem_300, 5, seed=2)
    system = build_block_system(fem_300, part)
    method = DistributedSouthwell(system)
    res = solve(fem_300, method=method, max_steps=5, seed=2, runtime="flat")
    assert res.n_parts == 5
    assert res.parallel_steps == 5


def test_solve_validation(fem_300):
    with pytest.raises(ValueError):
        solve(fem_300, method="nope", n_parts=4)
    with pytest.raises(ValueError):
        solve(fem_300, method="block-jacobi")


def test_reached_helper(fem_300):
    res = solve(fem_300, method="parallel-southwell", n_parts=4,
                max_steps=40, seed=0)
    assert res.reached(0.5)
    assert not res.reached(1e-30)


# ------------------------------------------------------------------- cli
def test_cli_generated_problem(capsys):
    rc = main(["-n", "8", "-sweep_max", "5", "-grid_dim", "20",
               "-solver", "sos_sds", "-seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "distributed-southwell" in out
    assert "n=400" in out


def test_cli_format_out(capsys):
    rc = main(["-n", "4", "-sweep_max", "3", "-grid_dim", "12",
               "-solver", "sj", "-format_out", "-target", "0.5",
               "--runtime", "flat"])
    assert rc == 0
    out = capsys.readouterr().out
    fields = dict(line.split(None, 1) for line in out.strip().splitlines())
    assert fields["solver"] == "block-jacobi"
    assert int(fields["parallel_steps"]) == 3
    assert float(fields["residual_norm"]) > 0
    assert "steps_to_target" in fields


def test_cli_x_zeros_and_aliases(capsys):
    rc = main(["-n", "4", "-sweep_max", "2", "-grid_dim", "10",
               "-solver", "ps", "-x_zeros"])
    assert rc == 0
    assert "parallel-southwell" in capsys.readouterr().out


def test_cli_async_flags_beat_env(monkeypatch, capsys):
    """--runtime / --async-* flags override the REPRO_* knobs."""
    monkeypatch.setenv("REPRO_RUNTIME", "flat")
    monkeypatch.setenv("REPRO_ASYNC_LATENCY", "9e-3")
    rc = main(["-n", "4", "-sweep_max", "10", "-grid_dim", "10",
               "-solver", "sos_sds", "-format_out",
               "--runtime", "async", "--async-latency", "1e-5",
               "--async-speed-factors", "0:0.5"])
    assert rc == 0
    out = capsys.readouterr().out
    fields = dict(line.split(None, 1) for line in out.strip().splitlines())
    # async ran (env said flat) with the flag latency (env said 9 ms —
    # a run priced at that would report virtual_time in the 10ms range)
    assert "virtual_time" in fields
    assert 0.0 < float(fields["virtual_time"]) < 1e-3


def test_cli_async_scheduler_flag(monkeypatch, capsys):
    """--async-scheduler batched runs the vectorized engine and reports
    the same metrics as the scalar oracle (bit-identical, §5.15)."""
    outs = []
    for sched in ("scalar", "batched"):
        monkeypatch.setenv("REPRO_ASYNC_SCHEDULER", "junk-ignored")
        rc = main(["-n", "4", "-sweep_max", "10", "-grid_dim", "10",
                   "-solver", "sos_sds", "-format_out",
                   "--runtime", "async", "--async-scheduler", sched])
        assert rc == 0
        fields = dict(line.split(None, 1) for line in
                      capsys.readouterr().out.strip().splitlines())
        outs.append({k: v for k, v in fields.items()
                     if "wallclock" not in k})
    assert "virtual_time" in outs[0]
    assert outs[0] == outs[1]


def test_cli_rejects_bad_async_spec(capsys):
    with pytest.raises(ValueError):
        main(["-n", "4", "-sweep_max", "2", "-grid_dim", "10",
              "--runtime", "async", "--async-speed-factors", "0=2"])


def test_cli_reads_matrix_file(tmp_path, capsys, poisson_100):
    path = tmp_path / "m.mtx"
    write_matrix_market(path, poisson_100)
    rc = main(["-n", "4", "-sweep_max", "2", "-mat_file", str(path)])
    assert rc == 0
    assert "n=100" in capsys.readouterr().out


def test_cli_mg_solver(capsys):
    rc = main(["--method", "mg", "-grid_dim", "15", "-n", "4", "-x_zeros",
               "-format_out"])
    assert rc == 0
    out = capsys.readouterr().out
    fields = dict(line.split(None, 1) for line in out.strip().splitlines())
    assert fields["solver"] == "mg"
    assert int(fields["parallel_steps"]) == 9        # 9 V-cycles
    assert float(fields["residual_norm"]) < 1e-6
    assert float(fields["comm_cost"]) > 0            # block-DS default


def test_cli_mg_flags(capsys):
    rc = main(["-solver", "multigrid", "-grid_dim", "15", "-n", "4",
               "--mg-smoother", "gs", "--mg-drop-tol", "0.1", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.solveresult/v5"
    assert doc["method"] == "mg-gauss-seidel"
    assert doc["config"]["mg"]["smoother"] == "gs"
    assert doc["config"]["mg"]["drop_tol"] == 0.1
    assert sum(lvl["nnz_dropped"] for lvl in doc["levels"]) > 0


def test_cli_mg_rejects_non_power_grid(capsys):
    with pytest.raises(ValueError, match="2\\^k"):
        main(["-solver", "mg", "-grid_dim", "20", "-n", "4"])
