#!/usr/bin/env python
"""Paper-scale scaling campaign — n up to 1M rows, P up to 4096.

Runs DS and PS over an (n × P) grid of 2D Poisson problems through the
memory-bounded pipeline (streamed generation, grid partitioning, flat
message plane) and records, per cell: build-phase wall times, per-step
wall times, message/byte totals, and the cell's peak RSS.  Each cell
executes in a **forked child process**, so ``getrusage(RUSAGE_SELF)``
in the child is that cell's true high-water mark, not the campaign's
running maximum.

The campaign reproduces the paper's headline at scale: DS converges
like PS while communicating ~3× less.  The communication ratio is
measured the way the paper measures it — messages per process **to
reach a common residual target** (the weaker method's final norm,
crossings interpolated with the same ``interp_log_residual`` the
Table 2/3 reproduction uses) — and the summary gates on that ratio at
the largest cell (≥ 2.5×) plus the memory budget (peak RSS < 16 GB at
n = 1,048,576, P = 4096).  The ratio grows with convergence depth, so
the default 48 steps (‖r‖ ≈ 4e-3 from ‖r⁰‖ = 1) is part of the
campaign's definition.

Before any cell runs, four small-n **digest gates** prove the touched
paths are still bit-identical to the seed implementations: streamed
generation vs the whole-mesh reference, in-place-relabel coarsening vs
the level-materializing hierarchy, int32 vs int64 slab indices, and
cold vs warm setup-cache solves.  Any gate failure aborts the campaign.

Results are written to ``BENCH_scale.json`` at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_scale.py           # full campaign
    PYTHONPATH=src python scripts/bench_scale.py --smoke   # CI-sized

Schema (``BENCH_scale.json``)::

    {
      "schema": "repro.bench_scale/v1",
      "smoke": false,
      "environment": {...},
      "gates": {"generation": "ok", "coarsening": "ok",
                "slab_dtypes": "ok", "setup_cache": "ok"},
      "cells": [
        {"side": ..., "n": ..., "n_parts": ...,
         "build_s": {"generate": ..., "partition": ..., "block_build": ...,
                     "method_setup": ...},
         "peak_rss_bytes": ...,
         "results": [
           {"method": "distributed-southwell" | "parallel-southwell",
            "steps": ..., "step_s": [...], "mean_step_s": ...,
            "final_norm": ..., "total_messages": ..., "total_bytes": ...,
            "comm_cost": ..., "comm_at_target": ...,
            "history_digest": "..."}, ...],
         "target_norm": ...,
         "comm_ratio_ps_over_ds": ..., "norm_ratio_ds_over_ps": ...},
        ...
      ],
      "summary": {"max_peak_rss_bytes": ..., "under_16gb": true,
                  "headline": {"side": ..., "n_parts": ...,
                               "comm_ratio_ps_over_ds": ...},
                  "headline_ratio_ok": true, "gates_ok": true}
    }
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import config as _config  # noqa: E402
from repro.core import DistributedSouthwell, ParallelSouthwell  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.runtime import use_runtime  # noqa: E402
from repro.sparsela import symmetric_unit_diagonal_scale  # noqa: E402

SCHEMA = "repro.bench_scale/v1"
GB = 1 << 30

METHODS = {
    "distributed-southwell": DistributedSouthwell,
    "parallel-southwell": ParallelSouthwell,
}


def _peak_rss_self() -> int:
    unit = 1 if sys.platform == "darwin" else 1024
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * unit


# ----------------------------------------------------------------------
# small-n digest gates: every touched path still bit-identical
# ----------------------------------------------------------------------
def _csr_sha256(A) -> str:
    h = hashlib.sha256()
    for arr in (A.indptr, A.indices, A.data):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _gate_generation() -> bool:
    """Streamed grid build vs the seed whole-mesh reference."""
    from repro.matrices.poisson import _grid2d_entries
    from repro.matrices.stream import grid2d_stream

    def coeff(i, j):
        return np.ones(i.shape), np.ones(i.shape)

    ref = _grid2d_entries(48, 48, coeff)
    got = grid2d_stream(48, 48, coeff, block_rows=7)
    return _csr_sha256(ref) == _csr_sha256(got)


def _gate_coarsening() -> bool:
    """In-place-relabel coarsening vs the level-materializing hierarchy."""
    from repro.partition import coarsen_graph, coarsen_labels, matrix_graph

    g = matrix_graph(poisson_2d(32))
    labels, coarse, n_levels = coarsen_labels(g, min_vertices=48, seed=0)
    levels = coarsen_graph(g, min_vertices=48, seed=0)
    ref = np.arange(g.n_vertices)
    for level in levels:
        ref = level.cmap[ref]
    return (n_levels == len(levels) and np.array_equal(labels, ref)
            and coarse.n_vertices == levels[-1].graph.n_vertices)


def _history_digest(cls, side: int, n_parts: int, steps: int) -> str:
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(0)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    with use_runtime("flat"):
        m = cls(system)
        m.setup(x0, b)
        norms = []
        for _ in range(steps):
            m.step()
            norms.append(m.global_norm())
    h = hashlib.sha256()
    h.update(np.asarray(norms, dtype=np.float64).tobytes())
    h.update(np.asarray(m.norms, dtype=np.float64).tobytes())
    h.update(str(m.total_relaxations).encode())
    return h.hexdigest()


def _gate_slab_dtypes() -> bool:
    """int32 slab-index fast path vs the int64 path, same digests."""
    import repro.runtime.flatplane as fp

    d32 = _history_digest(DistributedSouthwell, 32, 16, 8)
    saved = fp._INT32_LIMIT
    try:
        fp._INT32_LIMIT = 0          # force every plane onto int64
        d64 = _history_digest(DistributedSouthwell, 32, 16, 8)
    finally:
        fp._INT32_LIMIT = saved
    return d32 == d64


def _gate_setup_cache() -> bool:
    """Cold vs warm (memmap-backed) setup-cache solves, same histories."""
    from repro.api import solve

    A = symmetric_unit_diagonal_scale(poisson_2d(24)).matrix
    with tempfile.TemporaryDirectory() as d:
        os.environ["REPRO_SETUP_CACHE"] = d
        try:
            cold = solve(A, n_parts=4, max_steps=8, seed=0, runtime="flat")
            warm = solve(A, n_parts=4, max_steps=8, seed=0, runtime="flat")
        finally:
            del os.environ["REPRO_SETUP_CACHE"]
    return (cold.history.residual_norms == warm.history.residual_norms
            and np.array_equal(cold.x, warm.x))


GATES = {
    "generation": _gate_generation,
    "coarsening": _gate_coarsening,
    "slab_dtypes": _gate_slab_dtypes,
    "setup_cache": _gate_setup_cache,
}


def run_gates(log) -> dict:
    out = {}
    for name, fn in GATES.items():
        t0 = time.perf_counter()
        ok = bool(fn())
        out[name] = "ok" if ok else "FAILED"
        log(f"  gate {name:<12} {out[name]}"
            f"  ({time.perf_counter() - t0:.2f} s)")
    return out


# ----------------------------------------------------------------------
# one (n, P) cell — executed inside a forked child
# ----------------------------------------------------------------------
def run_cell(side: int, n_parts: int, steps: int) -> dict:
    t0 = time.perf_counter()
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    t_gen = time.perf_counter() - t0

    t0 = time.perf_counter()
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    t_part = time.perf_counter() - t0

    t0 = time.perf_counter()
    system = build_block_system(A, part)
    t_build = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    r0 = b - A.matvec(x0)
    x0 = x0 / np.linalg.norm(r0)         # the paper's ‖r⁰‖₂ = 1 setup

    results = []
    curves = {}
    t_setup_total = 0.0
    for name, cls in METHODS.items():
        with use_runtime("flat"):
            m = cls(system)
            t0 = time.perf_counter()
            m.setup(x0, b)
            t_setup = time.perf_counter() - t0
            t_setup_total += t_setup
            norms = []
            comm_curve = []
            step_s = []
            for _ in range(steps):
                t0 = time.perf_counter()
                m.step()
                step_s.append(time.perf_counter() - t0)
                norms.append(m.global_norm())
                comm_curve.append(m.engine.stats.communication_cost())
        h = hashlib.sha256()
        h.update(np.asarray(norms, dtype=np.float64).tobytes())
        h.update(np.asarray(m.norms, dtype=np.float64).tobytes())
        h.update(str(m.total_relaxations).encode())
        stats = m.engine.stats
        curves[name] = (np.asarray(norms), np.asarray(comm_curve))
        results.append({
            "method": name,
            "steps": steps,
            "step_s": [float(s) for s in step_s],
            "mean_step_s": float(np.mean(step_s)),
            "final_norm": float(norms[-1]),
            "total_messages": int(stats.total_messages),
            "total_bytes": int(stats.total_bytes),
            "comm_cost": float(stats.communication_cost()),
            "history_digest": h.hexdigest(),
        })
        del m

    # the paper's metric: messages per process to reach a COMMON
    # residual target — the weaker method's final norm, so both runs
    # crossed it — with the Table 2/3 crossing interpolation
    from repro.analysis.history import interp_log_residual

    target = max(float(curves[name][0][-1]) for name in curves)
    comm_at = {}
    for r in results:
        norms, comm_curve = curves[r["method"]]
        comm_at[r["method"]] = float(
            interp_log_residual(comm_curve, norms, target))
        r["comm_at_target"] = comm_at[r["method"]]

    ds = next(r for r in results if r["method"] == "distributed-southwell")
    ps = next(r for r in results if r["method"] == "parallel-southwell")
    return {
        "side": side,
        "n": side * side,
        "n_parts": n_parts,
        "build_s": {"generate": t_gen, "partition": t_part,
                    "block_build": t_build, "method_setup": t_setup_total},
        "peak_rss_bytes": _peak_rss_self(),
        "results": results,
        "target_norm": target,
        "comm_ratio_ps_over_ds": (comm_at["parallel-southwell"]
                                  / comm_at["distributed-southwell"]),
        "norm_ratio_ds_over_ps": ds["final_norm"] / ps["final_norm"],
    }


def run_cell_forked(side: int, n_parts: int, steps: int) -> dict:
    """Run one cell in a fresh child so its RSS is the cell's own."""
    if not hasattr(os, "fork"):          # pragma: no cover - POSIX hosts
        return run_cell(side, n_parts, steps)
    rfd, wfd = os.pipe()
    pid = os.fork()
    if pid == 0:                          # child
        code = 1
        try:
            os.close(rfd)
            payload = json.dumps(run_cell(side, n_parts, steps)).encode()
            with os.fdopen(wfd, "wb") as fh:
                fh.write(payload)
            code = 0
        except BaseException as exc:      # noqa: BLE001 - report then die
            print(f"cell (side={side}, P={n_parts}) failed: {exc!r}",
                  file=sys.stderr)
        finally:
            os._exit(code)
    os.close(wfd)
    with os.fdopen(rfd, "rb") as fh:
        payload = fh.read()
    _, status = os.waitpid(pid, 0)
    if status != 0 or not payload:
        raise RuntimeError(
            f"cell (side={side}, P={n_parts}) child failed "
            f"(status {status})")
    return json.loads(payload)


# ----------------------------------------------------------------------
def environment() -> dict:
    import numpy
    import scipy
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "backend": _config.backend() or "default",
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized campaign (n≈200k, P=1024, one cell)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_scale.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--steps", type=int, default=48)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)
    log = (lambda s: None) if args.quiet else print

    if args.smoke:
        grid = [(448, 1024)]                   # n = 200,704
    else:
        grid = [(512, 1024), (512, 4096),      # n = 262,144
                (1024, 1024), (1024, 4096)]    # n = 1,048,576

    t_start = time.perf_counter()
    log("digest gates (small n, bit-identity of every touched path):")
    gates = run_gates(log)
    gates_ok = all(v == "ok" for v in gates.values())
    if not gates_ok:
        print("ERROR: digest gate failed — campaign aborted",
              file=sys.stderr)
        bad = {k: v for k, v in gates.items() if v != "ok"}
        print(f"  failing gates: {bad}", file=sys.stderr)
        return 1

    cells = []
    for side, n_parts in grid:
        log(f"cell side={side} (n={side * side:,}) P={n_parts} "
            f"steps={args.steps}:")
        cell = run_cell_forked(side, n_parts, args.steps)
        cells.append(cell)
        b = cell["build_s"]
        log(f"  build: gen={b['generate']:.1f}s part={b['partition']:.1f}s "
            f"blocks={b['block_build']:.1f}s setup={b['method_setup']:.1f}s"
            f"  peak_rss={cell['peak_rss_bytes'] / GB:.2f} GB")
        for r in cell["results"]:
            log(f"  {r['method']:<22} step={r['mean_step_s'] * 1e3:8.1f} ms"
                f"  msgs={r['total_messages']:>12,}"
                f"  ‖r‖={r['final_norm']:.3e}")
        log(f"  comm ratio PS/DS = {cell['comm_ratio_ps_over_ds']:.2f}x "
            f"at ‖r‖ = {cell['target_norm']:.2e}")

    headline = cells[-1]      # largest (n, P) cell in the grid
    max_rss = max(c["peak_rss_bytes"] for c in cells)
    summary = {
        "max_peak_rss_bytes": max_rss,
        "under_16gb": max_rss < 16 * GB,
        "headline": {
            "side": headline["side"],
            "n": headline["n"],
            "n_parts": headline["n_parts"],
            "comm_ratio_ps_over_ds": headline["comm_ratio_ps_over_ds"],
            "norm_ratio_ds_over_ps": headline["norm_ratio_ds_over_ps"],
            "peak_rss_bytes": headline["peak_rss_bytes"],
        },
        "headline_ratio_ok": headline["comm_ratio_ps_over_ds"] >= 2.5,
        "gates_ok": gates_ok,
    }
    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"steps": args.steps,
                   "grid": [{"side": s, "n_parts": p} for s, p in grid]},
        "gates": gates,
        "cells": cells,
        "summary": summary,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} ({len(cells)} cells, "
        f"{time.perf_counter() - t_start:.1f} s)")
    if not summary["under_16gb"]:
        print(f"ERROR: peak RSS {max_rss / GB:.2f} GB breaks the "
              f"16 GB budget", file=sys.stderr)
        return 1
    if not summary["headline_ratio_ok"]:
        print(f"ERROR: headline PS/DS comm ratio "
              f"{summary['headline']['comm_ratio_ps_over_ds']:.2f}x "
              f"< 2.5x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
