#!/usr/bin/env python
"""Setup-plane benchmarks: partitioner stages + persistent setup cache.

Times the multilevel partitioner on the af_5_k101 suite analog
(``poisson_2d(110)``, n = 12100) at the paper-scale P = 256, split into
its two dominant stages — coarsening (heavy-edge matching + contraction)
and FM refinement — under the default vectorized kernels, the seed
``reference`` kernels, and ``numba`` when available.  Partition digests
are recorded and cross-checked: every backend must produce bit-identical
parts.  A second section times :func:`repro.setupcache.get_setup` cold
(compute + store) versus warm (load from disk), the number the
``REPRO_SETUP_CACHE`` knob buys on repeated experiment runs.

Results are written to ``BENCH_setup.json`` at the repository root in a
stable schema so future PRs can be judged against the trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_setup.py            # full run
    PYTHONPATH=src python scripts/bench_setup.py --smoke    # CI-sized

Schema (``BENCH_setup.json``)::

    {
      "schema": "repro.bench_setup/v1",
      "smoke": false,
      "environment": {"python": ..., "numpy": ..., "scipy": ...,
                      "numba": null | version, "platform": ...},
      "config": {"side": ..., "n_parts": ..., "repeats": ...,
                 "backends": [...]},
      "results": [
        {"kind": "partition", "backend": "scipy", "n": ..., "n_parts": ...,
         "best_s": ..., "mean_s": ..., "coarsen_s": ..., "refine_s": ...,
         "other_s": ..., "digest": "..."},
        {"kind": "block_build", "n": ..., "n_parts": ..., "best_s": ...,
         "mean_s": ...},
        {"kind": "setup_cache", "n": ..., "n_parts": ..., "cold_s": ...,
         "warm_s": ..., "speedup": ...},
      ],
      "summary": {"digests_identical": true,
                  "partition_speedup_vs_reference": ...,
                  "coarsen_speedup_vs_reference": ...,
                  "setup_cache_speedup": ...}
    }

``best_s``/``mean_s`` are whole-partition seconds over ``--repeats``
runs; the stage columns (``coarsen_s``/``refine_s``) are from the
best run, measured by wrapping the stage entry points — the partitioner
itself is unmodified while timed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.partition.multilevel as _ml  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.setupcache import get_setup, setup_key  # noqa: E402
from repro.sparsela import available_backends, use_backend  # noqa: E402

SCHEMA = "repro.bench_setup/v1"


def _parts_digest(parts: np.ndarray) -> str:
    import hashlib

    return hashlib.sha256(parts.astype(np.int64).tobytes()).hexdigest()[:16]


class _StageClock:
    """Accumulates wall clock spent inside one wrapped entry point."""

    def __init__(self, fn):
        self.fn = fn
        self.elapsed = 0.0

    def __call__(self, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return self.fn(*args, **kwargs)
        finally:
            self.elapsed += time.perf_counter() - t0


def _timed_partition(A, n_parts):
    """One partition run with per-stage accounting.

    ``multilevel.py`` binds ``coarsen_graph`` and ``fm_refine`` at import
    time, so rebinding those module attributes times the stages without
    touching the partitioner; the wrappers delegate unchanged, so the
    result (and its digest) is the real one.
    """
    coarsen = _StageClock(_ml.coarsen_graph)
    refine = _StageClock(_ml.fm_refine)
    _ml.coarsen_graph, _ml.fm_refine = coarsen, refine
    try:
        t0 = time.perf_counter()
        part = partition(A, n_parts, method="multilevel", seed=0)
        total = time.perf_counter() - t0
    finally:
        _ml.coarsen_graph, _ml.fm_refine = coarsen.fn, refine.fn
    return part, total, coarsen.elapsed, refine.elapsed


def bench_partition(A, n_parts, backends, repeats, log) -> list[dict]:
    results = []
    for name in backends:
        with use_backend(name):
            runs = [_timed_partition(A, n_parts) for _ in range(repeats)]
        digests = {_parts_digest(r[0].parts) for r in runs}
        assert len(digests) == 1, f"non-deterministic partition: {digests}"
        best = min(runs, key=lambda r: r[1])
        _, total, coarsen_s, refine_s = best
        rec = {
            "kind": "partition", "backend": name,
            "n": A.n_rows, "n_parts": n_parts, "repeats": repeats,
            "best_s": total,
            "mean_s": float(np.mean([r[1] for r in runs])),
            "coarsen_s": coarsen_s, "refine_s": refine_s,
            "other_s": max(0.0, total - coarsen_s - refine_s),
            "digest": digests.pop(),
        }
        results.append(rec)
        log(f"  partition   {name:<10} n={A.n_rows:<7} P={n_parts:<4} "
            f"best={total * 1e3:8.1f} ms  (coarsen {coarsen_s * 1e3:7.1f} / "
            f"refine {refine_s * 1e3:7.1f})  digest={rec['digest']}")
    return results


def bench_block_build(A, n_parts, repeats, log) -> dict:
    part = partition(A, n_parts, method="multilevel", seed=0)
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        build_block_system(A, part)
        samples.append(time.perf_counter() - t0)
    rec = {"kind": "block_build", "n": A.n_rows, "n_parts": n_parts,
           "repeats": repeats, "best_s": min(samples),
           "mean_s": float(np.mean(samples))}
    log(f"  block_build {'':<10} n={A.n_rows:<7} P={n_parts:<4} "
        f"best={rec['best_s'] * 1e3:8.1f} ms")
    return rec


def bench_setup_cache(A, n_parts, repeats, log) -> dict:
    """Cold (compute + store) vs warm (disk load) ``get_setup``."""
    colds, warms = [], []
    with tempfile.TemporaryDirectory() as d:
        cache = Path(d)
        key = setup_key(A, n_parts)
        for _ in range(repeats):
            (cache / f"{key}.pkl").unlink(missing_ok=True)
            t0 = time.perf_counter()
            get_setup(A, n_parts, cache_dir=cache)
            colds.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            get_setup(A, n_parts, cache_dir=cache)
            warms.append(time.perf_counter() - t0)
    rec = {"kind": "setup_cache", "n": A.n_rows, "n_parts": n_parts,
           "repeats": repeats, "cold_s": min(colds), "warm_s": min(warms),
           "speedup": min(colds) / min(warms)}
    log(f"  setup_cache {'':<10} n={A.n_rows:<7} P={n_parts:<4} "
        f"cold={rec['cold_s'] * 1e3:8.1f} ms  warm={rec['warm_s'] * 1e3:7.1f}"
        f" ms  ({rec['speedup']:.1f}x)")
    return rec


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (small grid, few repeats)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_setup.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--side", type=int, default=None,
                    help="Poisson grid side (default 110 = af_5_k101 "
                         "analog; rows = side^2)")
    ap.add_argument("--n-parts", type=int, default=None,
                    help="partition count (default 256)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per case")
    ap.add_argument("--backends", nargs="*", default=None,
                    help="kernel backends to time (default: all available)")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    side = args.side or (40 if args.smoke else 110)
    n_parts = args.n_parts or (16 if args.smoke else 256)
    repeats = args.repeats or (2 if args.smoke else 3)
    backends = args.backends or available_backends()
    log = (lambda s: None) if args.quiet else print

    A = poisson_2d(side)
    log(f"matrix: poisson_2d({side}) n={A.n_rows} nnz={A.nnz}; "
        f"P={n_parts}; backends: {backends}")
    t0 = time.perf_counter()
    results = bench_partition(A, n_parts, backends, repeats, log)
    results.append(bench_block_build(A, n_parts, repeats, log))
    results.append(bench_setup_cache(A, n_parts, repeats, log))

    by_backend = {r["backend"]: r for r in results
                  if r["kind"] == "partition"}
    digests = {r["digest"] for r in by_backend.values()}
    default_name = next(b for b in backends if b != "reference")
    summary = {"digests_identical": len(digests) == 1}
    if "reference" in by_backend:
        ref, fast = by_backend["reference"], by_backend[default_name]
        summary["partition_speedup_vs_reference"] = \
            ref["best_s"] / fast["best_s"]
        summary["coarsen_speedup_vs_reference"] = \
            ref["coarsen_s"] / fast["coarsen_s"]
    cache_rec = next(r for r in results if r["kind"] == "setup_cache")
    summary["setup_cache_speedup"] = cache_rec["speedup"]

    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"side": side, "n_parts": n_parts, "repeats": repeats,
                   "backends": list(backends)},
        "results": results,
        "summary": summary,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} "
        f"({len(results)} records, {time.perf_counter() - t0:.1f} s)")
    if not summary["digests_identical"]:
        log("ERROR: backends disagree on partition bytes")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
