#!/usr/bin/env python
"""Parallel-runtime benchmark — shm worker pool vs single-process flat.

Times DS / PS / Block Jacobi on a 2D Poisson problem (P=256, n≥50k by
default) under two runtimes:

- ``flat`` — the single-process preallocated flat plane (the baseline);
- ``shm``  — the same plane with the per-rank phase work executed by a
  pool of forked workers over shared memory (DESIGN.md §5.12).

The identity contract is enforced, not assumed: each method's shm run
must produce the same history digest and the same message/byte totals
as its flat run — a speedup that changes the numbers is a bug, and the
script fails.  Wall-clock speedup is *reported* here and *gated* by the
perf smoke (``benchmarks/test_perf_smoke.py``) only on multi-core
machines; on a single core the pool can only break even.

Results are written to ``BENCH_parallel.json`` at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_parallel.py            # full run
    PYTHONPATH=src python scripts/bench_parallel.py --smoke    # CI-sized

Schema (``BENCH_parallel.json``)::

    {
      "schema": "repro.bench_parallel/v1",
      "smoke": false,
      "environment": {..., "cpu_count": ..., "workers": ...},
      "config": {"n_parts": ..., "side": ..., "n": ..., "steps": ...,
                 "repeats": ...},
      "results": [
        {"method": "distributed-southwell" | ..., "runtime": "flat"|"shm",
         "best_step_s": ..., "mean_step_s": ..., "history_digest": "...",
         "total_messages": ..., "total_bytes": ...,
         "degraded_reason": null | "shm-unavailable"},
        ...
      ],
      "summary": {"speedups": {"<method>": ...}, "min_speedup": ...,
                  "all_identical": true, "shm_degraded": false}
    }
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import config as _config  # noqa: E402
from repro.core import DistributedSouthwell, ParallelSouthwell  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.runtime import use_runtime  # noqa: E402
from repro.solvers.block_jacobi import BlockJacobi  # noqa: E402
from repro.sparsela import symmetric_unit_diagonal_scale  # noqa: E402

SCHEMA = "repro.bench_parallel/v1"

METHODS = {
    "distributed-southwell": DistributedSouthwell,
    "parallel-southwell": ParallelSouthwell,
    "block-jacobi": BlockJacobi,
}


def build_case(n_parts: int, side: int):
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    return system, x0, np.zeros(A.n_rows)


def run_one(name: str, cls, mode: str, system, x0, b, steps: int,
            repeats: int) -> dict:
    best = []
    with use_runtime(mode):
        for _ in range(repeats):
            m = cls(system)
            m.setup(x0, b)
            m._shm_ensure()     # spawn the pool outside the timed region
            norms = []
            t0 = time.perf_counter()
            for _ in range(steps):
                m.step()
                norms.append(m.global_norm())
            best.append((time.perf_counter() - t0) / steps)
            m._shm_close()          # drop the pool before the next repeat
        assert m._use_flat
    h = hashlib.sha256()
    h.update(np.asarray(norms, dtype=np.float64).tobytes())
    h.update(np.asarray(m.norms, dtype=np.float64).tobytes())
    h.update(str(m.total_relaxations).encode())
    stats = m.engine.stats
    return {
        "method": name,
        "runtime": mode,
        "best_step_s": min(best),
        "mean_step_s": float(np.mean(best)),
        "history_digest": h.hexdigest(),
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
        "degraded_reason": m.degraded_reason,
    }


def bench(n_parts: int, side: int, steps: int, repeats: int,
          log) -> tuple[list[dict], dict]:
    system, x0, b = build_case(n_parts, side)
    log(f"P={n_parts} (n={system.n}, side={side}), {steps} steps x "
        f"{repeats} repeats, workers={_config.shm_workers()}:")
    results = []
    speedups = {}
    all_identical = True
    shm_degraded = False
    for name, cls in METHODS.items():
        flat = run_one(name, cls, "flat", system, x0, b, steps, repeats)
        shm = run_one(name, cls, "shm", system, x0, b, steps, repeats)
        results += [flat, shm]
        identical = (flat["history_digest"] == shm["history_digest"]
                     and flat["total_messages"] == shm["total_messages"]
                     and flat["total_bytes"] == shm["total_bytes"])
        all_identical = all_identical and identical
        shm_degraded = shm_degraded or shm["degraded_reason"] is not None
        speedups[name] = flat["best_step_s"] / shm["best_step_s"]
        log(f"  {name:<22} flat={flat['best_step_s'] * 1e3:9.3f} ms  "
            f"shm={shm['best_step_s'] * 1e3:9.3f} ms  "
            f"speedup={speedups[name]:.2f}x  identical={identical}"
            + (f"  [{shm['degraded_reason']}]"
               if shm["degraded_reason"] else ""))
    summary = {
        "speedups": speedups,
        "min_speedup": min(speedups.values()),
        "all_identical": all_identical,
        "shm_degraded": shm_degraded,
    }
    return results, summary


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "workers": _config.shm_workers(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (smaller problem, fewer repeats)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_parallel.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--n-parts", type=int, default=None)
    ap.add_argument("--side", type=int, default=None)
    ap.add_argument("--steps", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    # full size: side=224 -> n=50176 >= 50k, the tentpole's bench point
    n_parts = args.n_parts or (16 if args.smoke else 256)
    side = args.side or (48 if args.smoke else 224)
    steps = args.steps or (3 if args.smoke else 5)
    repeats = args.repeats or (2 if args.smoke else 3)
    log = (lambda s: None) if args.quiet else print

    t0 = time.perf_counter()
    results, summary = bench(n_parts, side, steps, repeats, log)
    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"n_parts": n_parts, "side": side, "n": side * side,
                   "steps": steps, "repeats": repeats},
        "results": results,
        "summary": summary,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} "
        f"({len(results)} records, {time.perf_counter() - t0:.1f} s)")
    if not summary["all_identical"]:
        print("ERROR: shm run differs from flat run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
