#!/usr/bin/env python
"""Communication-aware multigrid benchmark — messages per digit.

Runs the Figure 6 V-cycle protocol (9 cycles, seeded random RHS, zero
initial guess) with the *block* smoothers at the equal-relaxation-budget
contract and measures what each smoother's communication buys:

- smoother comparison — block-DS vs block-PS vs block-BJ vs serial GS
  per grid size, reporting total smoothing messages/bytes and
  **messages per digit** of residual reduction
  (``total_msgs / log10(r0/rN)``).  The paper's claim, measured at the
  V-cycle: Distributed Southwell needs several times fewer messages per
  digit than Parallel Southwell at the same relaxation budget (DS skips
  PS's all-neighbor residual-norm exchange).  Block-Jacobi sends no
  norm traffic at all but converges shallower per relaxation; serial GS
  is the zero-message convergence reference.
- sparsification sweep — Galerkin hierarchies at ``drop_tol`` in
  {0, 0.1, 0.2} with block-DS: dropping weak coarse couplings removes
  message edges (msgs fall monotonically) while damping the coarse
  correction (digits fall too) — the honest comm-vs-convergence
  trade-off of arXiv 1512.04629.
- determinism — the headline configuration runs twice and must produce
  bit-identical residual histories and message counts (sha256 digest).

Results are written to ``BENCH_mg.json`` at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_mg.py            # full run
    PYTHONPATH=src python scripts/bench_mg.py --smoke    # CI-sized

Schema (``BENCH_mg.json``)::

    {
      "schema": "repro.bench_mg/v1",
      "smoke": false,
      "environment": {...},
      "config": {"n_parts": ..., "dims": [...], "cycles": ...,
                 "drop_tols": [...]},
      "smoothers": [
        {"smoother": ..., "dim": ..., "rel_resid": ..., "digits": ...,
         "msgs": ..., "bytes": ..., "msgs_per_digit": ...,
         "bytes_per_digit": ..., "levels": [...], "digest": "..."},
        ...
      ],
      "sparsification": [
        {"drop_tol": ..., "rel_resid": ..., "digits": ..., "msgs": ...,
         "bytes": ..., "nnz_dropped": ..., "msgs_per_digit": ...}, ...
      ],
      "summary": {"ds_vs_ps_msgs_per_digit": ...,
                  "ds_fewer_msgs_per_digit_than_ps": true,
                  "sparsify_msgs_monotone": true,
                  "sparsify_saves_msgs": true,
                  "grid_independent": true,
                  "deterministic": true}
    }

``ds_fewer_msgs_per_digit_than_ps``, ``sparsify_msgs_monotone``,
``sparsify_saves_msgs``, ``grid_independent`` and ``deterministic`` are
the perf-smoke-enforced acceptance gates (all must be true).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.multigrid import MultigridExecutor, make_smoother  # noqa: E402

SCHEMA = "repro.bench_mg/v1"

SMOOTHERS = ("ds", "ps", "bj", "gs")
DROP_TOLS = (0.0, 0.1, 0.2)


def run_vcycles(dim: int, n_parts: int, smoother: str, cycles: int,
                hierarchy: str = "geometric",
                drop_tol: float = 0.0) -> dict:
    """One Figure 6 run; returns metrics plus a determinism digest."""
    h = 1.0 / (dim + 1)
    A = poisson_2d(dim).scale(1.0 / h ** 2)
    b = np.random.default_rng(0).uniform(-1.0, 1.0, dim * dim)
    mg = MultigridExecutor(A, make_smoother(smoother, n_parts=n_parts,
                                            seed=0),
                           hierarchy=hierarchy, drop_tol=drop_tol)
    hist = mg.run(b, n_cycles=cycles)
    agg = mg.aggregate_stats()
    rel = hist.final_norm / hist.initial_norm
    digits = math.log10(hist.initial_norm / hist.final_norm)
    dig = hashlib.sha256()
    dig.update(np.asarray(hist.residual_norms, dtype=np.float64).tobytes())
    dig.update(str(agg.total_messages).encode())
    dig.update(str(agg.total_bytes).encode())
    return {
        "smoother": smoother,
        "dim": dim,
        "rel_resid": rel,
        "digits": digits,
        "msgs": agg.total_messages,
        "bytes": agg.total_bytes,
        "msgs_per_digit": agg.total_messages / digits,
        "bytes_per_digit": agg.total_bytes / digits,
        "nnz_dropped": sum(mg.dropped),
        "levels": [row.to_dict() for row in mg.level_stats()],
        "digest": dig.hexdigest(),
    }


def bench(dims: tuple[int, ...], n_parts: int, cycles: int,
          drop_tols: tuple[float, ...], log) -> tuple[list, list, dict]:
    log(f"smoothers at P={n_parts}, {cycles} V-cycles "
        f"(equal relaxation budget):")
    smoother_rows = []
    for dim in dims:
        for name in SMOOTHERS:
            rec = run_vcycles(dim, n_parts, name, cycles)
            smoother_rows.append(rec)
            log(f"  {name:3s} {dim:3d}x{dim:<3d} rel={rec['rel_resid']:9.2e}"
                f"  msgs={rec['msgs']:6d}  "
                f"msgs/digit={rec['msgs_per_digit']:8.1f}")

    log(f"sparsification sweep (galerkin, block-ds, dim={dims[0]}):")
    sparse_rows = []
    for tol in drop_tols:
        rec = run_vcycles(dims[0], n_parts, "ds", cycles,
                          hierarchy="galerkin", drop_tol=tol)
        rec["drop_tol"] = tol
        del rec["smoother"], rec["levels"]
        sparse_rows.append(rec)
        log(f"  tol={tol:4.2f} rel={rec['rel_resid']:9.2e}  "
            f"msgs={rec['msgs']:6d}  dropped={rec['nnz_dropped']}")

    repeat = run_vcycles(dims[0], n_parts, "ds", cycles)
    by = {(r["smoother"], r["dim"]): r for r in smoother_rows}
    ds_rows = [by[("ds", d)] for d in dims]
    ps_rows = [by[("ps", d)] for d in dims]
    summary = {
        "ds_vs_ps_msgs_per_digit": (
            ds_rows[-1]["msgs_per_digit"] / ps_rows[-1]["msgs_per_digit"]),
        "ds_fewer_msgs_per_digit_than_ps": all(
            d["msgs_per_digit"] < p["msgs_per_digit"]
            for d, p in zip(ds_rows, ps_rows)),
        "sparsify_msgs_monotone": all(
            a["msgs"] >= b["msgs"]
            for a, b in zip(sparse_rows, sparse_rows[1:])),
        "sparsify_saves_msgs": (sparse_rows[-1]["msgs"]
                                < sparse_rows[0]["msgs"]),
        # Figure 6 shape: every smoother stays convergent as the grid
        # grows (no more than one digit lost across the dim sweep)
        "grid_independent": all(
            by[(s, dims[-1])]["rel_resid"]
            < 10.0 * by[(s, dims[0])]["rel_resid"] + 1e-8
            for s in SMOOTHERS),
        "deterministic": repeat["digest"] == ds_rows[0]["digest"],
    }
    log(f"  ds/ps msgs-per-digit ratio "
        f"{summary['ds_vs_ps_msgs_per_digit']:.3f}, "
        f"deterministic: {summary['deterministic']}")
    return smoother_rows, sparse_rows, summary


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (smaller grids, fewer procs)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_mg.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--n-parts", type=int, default=None)
    ap.add_argument("--cycles", type=int, default=9)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    dims = (15, 31) if args.smoke else (31, 63)
    n_parts = args.n_parts or (4 if args.smoke else 16)
    log = (lambda s: None) if args.quiet else print

    t0 = time.perf_counter()
    smoother_rows, sparse_rows, summary = bench(dims, n_parts, args.cycles,
                                                DROP_TOLS, log)
    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"n_parts": n_parts, "dims": list(dims),
                   "cycles": args.cycles, "drop_tols": list(DROP_TOLS)},
        "smoothers": smoother_rows,
        "sparsification": sparse_rows,
        "summary": summary,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} ({len(smoother_rows)} smoother records, "
        f"{time.perf_counter() - t0:.1f} s)")
    gates = ("ds_fewer_msgs_per_digit_than_ps", "sparsify_msgs_monotone",
             "sparsify_saves_msgs", "grid_independent", "deterministic")
    failed = [g for g in gates if not summary[g]]
    if failed:
        print(f"ERROR: acceptance gate(s) failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
