#!/usr/bin/env python
"""Fault-plane benchmark — overhead when disabled, cost when active.

Three timed configurations of flat-plane Distributed Southwell on a 2D
Poisson problem (P=256 by default, the PR-1/PR-2 perf problem):

- ``off``   — no fault plan at all (the production hot path);
- ``null``  — a null :class:`~repro.faults.FaultPlan` attached (every
  rate zero).  Null plans must compile to *disabled* machinery, so this
  run must be bit-identical to ``off`` and its per-step time within
  noise of it — the acceptance bar is ≤5% overhead;
- ``drop``  — a lossy plan (10% drop both categories), which pays for
  fate draws, cumulative self-healing payloads and heartbeat repair;
  reported for scale, not gated.

Results are written to ``BENCH_faults.json`` at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_faults.py            # full run
    PYTHONPATH=src python scripts/bench_faults.py --smoke    # CI-sized

Schema (``BENCH_faults.json``)::

    {
      "schema": "repro.bench_faults/v1",
      "smoke": false,
      "environment": {...},
      "config": {"n_parts": ..., "side": ..., "steps": ..., "repeats": ...},
      "results": [
        {"plan": "off" | "null" | "drop", "best_step_s": ...,
         "mean_step_s": ..., "history_digest": "...",
         "total_messages": ..., "injected": {...}},
        ...
      ],
      "summary": {"null_overhead": ..., "drop_overhead": ...,
                  "null_identical_to_off": true}
    }

``null_overhead`` (null / off per-step time) is the perf-smoke-enforced
acceptance metric (bar: ≤1.05).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import DistributedSouthwell  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.runtime import use_runtime  # noqa: E402
from repro.sparsela import symmetric_unit_diagonal_scale  # noqa: E402

SCHEMA = "repro.bench_faults/v1"

PLANS = {
    "off": None,
    "null": FaultPlan(seed=11),
    "drop": FaultPlan.uniform(drop=0.1, seed=11),
}


def build_case(n_parts: int, side: int):
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    return system, x0, np.zeros(A.n_rows)


def run_one(label: str, plan, system, x0, b, steps: int,
            repeats: int) -> dict:
    best = []
    with use_runtime("flat"):
        for _ in range(repeats):
            ds = DistributedSouthwell(system, faults=plan)
            ds.setup(x0, b)
            norms = []
            t0 = time.perf_counter()
            for _ in range(steps):
                ds.step()
                norms.append(ds.global_norm())
            best.append((time.perf_counter() - t0) / steps)
        assert ds._use_flat
    h = hashlib.sha256()
    h.update(np.asarray(norms, dtype=np.float64).tobytes())
    h.update(np.asarray(ds.norms, dtype=np.float64).tobytes())
    h.update(str(ds.total_relaxations).encode())
    injected = (dict(ds._faults.injected) if ds._faults is not None
                else None)
    return {
        "plan": label,
        "best_step_s": min(best),
        "mean_step_s": float(np.mean(best)),
        "history_digest": h.hexdigest(),
        "total_messages": ds.engine.stats.total_messages,
        "injected": injected,
    }


def bench(n_parts: int, side: int, steps: int, repeats: int,
          log) -> tuple[list[dict], dict]:
    system, x0, b = build_case(n_parts, side)
    log(f"P={n_parts} (n={system.n}, side={side}), {steps} steps x "
        f"{repeats} repeats:")
    results = []
    for label, plan in PLANS.items():
        rec = run_one(label, plan, system, x0, b, steps, repeats)
        results.append(rec)
        log(f"  {label:<5} step={rec['best_step_s'] * 1e3:9.3f} ms  "
            f"msgs={rec['total_messages']}")
    by = {r["plan"]: r for r in results}
    summary = {
        "null_overhead": by["null"]["best_step_s"] / by["off"]["best_step_s"],
        "drop_overhead": by["drop"]["best_step_s"] / by["off"]["best_step_s"],
        "null_identical_to_off": (by["null"]["history_digest"]
                                  == by["off"]["history_digest"]
                                  and by["null"]["total_messages"]
                                  == by["off"]["total_messages"]),
    }
    log(f"  null overhead {summary['null_overhead']:.3f}x, "
        f"drop overhead {summary['drop_overhead']:.3f}x, "
        f"null==off: {summary['null_identical_to_off']}")
    return results, summary


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (smaller problem, fewer repeats)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_faults.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--n-parts", type=int, default=None)
    ap.add_argument("--side", type=int, default=None)
    ap.add_argument("--steps", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    n_parts = args.n_parts or (64 if args.smoke else 256)
    side = args.side or (64 if args.smoke else 96)
    steps = args.steps or 5
    repeats = args.repeats or (3 if args.smoke else 5)
    log = (lambda s: None) if args.quiet else print

    t0 = time.perf_counter()
    results, summary = bench(n_parts, side, steps, repeats, log)
    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"n_parts": n_parts, "side": side, "steps": steps,
                   "repeats": repeats},
        "results": results,
        "summary": summary,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} "
        f"({len(results)} records, {time.perf_counter() - t0:.1f} s)")
    if not summary["null_identical_to_off"]:
        print("ERROR: null-plan run differs from faultless run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
