#!/usr/bin/env python
"""Event-driven async runtime benchmark — engine speed, determinism, fig8.

Four gates for the ``runtime="async"`` plane (DESIGN.md §5.14/§5.15),
written to ``BENCH_async.json`` at the repository root:

1. **Determinism** — the pinned straggler+drop DS scenario runs twice
   and must produce bit-identical solutions (sha256 of ``res.x``); a
   fast-but-nondeterministic event engine is a bug, not a speedup.
2. **Engine speed** — Distributed Southwell at P=256 on the 96×96
   Poisson problem, simulated to a residual target, event-driven flat
   plane (:class:`~repro.core.async_exec.AsyncExecutor`) vs the seed
   object-plane engine
   (:class:`~repro.core.async_southwell.AsyncDistributedSouthwell`).
   Both engines are timed steady-state: the flat executor front-loads
   setup via ``prepare()``; the object engine's setup is a negligible
   slice of its run.  Target: ≥2× at the full-depth horizon.
3. **Fig8 analog** — ``run_fig8_async`` (drops × stragglers, simulated
   time to target): DS must reach the target under the max drop rate
   and beat PS's time (PS deadlocking / never reaching counts as DS
   winning — that contrast is the paper's point).
4. **Scheduler sweep** (schema v2) — scalar heap oracle vs the batched
   event-horizon scheduler (DESIGN.md §5.15) on a latency-dominated
   Distributed Southwell config at P=256 and P=1024.  Solution digest,
   turn count and history identity between the two schedulers are hard
   gates: a fast-but-divergent batched engine fails the bench.  The
   ISSUE-9 acceptance bar is batched ≥3× scalar at P=1024.

Usage::

    PYTHONPATH=src python scripts/bench_async.py            # full run
    PYTHONPATH=src python scripts/bench_async.py --smoke    # CI-sized

Schema (``BENCH_async.json``)::

    {
      "schema": "repro.bench_async/v2",
      "smoke": false,
      "environment": {"python": ..., "numpy": ..., "scipy": ...,
                      "numba": null | version, "platform": ...},
      "config": {"side": ..., "n_parts": ..., "target_norm": ...,
                 "repeats": ..., "fig8": {...},
                 "scheduler_sweep": [ {...case...}, ... ]},
      "engine": {"object_best_s": ..., "object_times": [...],
                 "flat_best_s": ..., "flat_times": [...],
                 "virtual_time_to_target": ..., "turns": ...},
      "determinism": {"digest": "...", "identical": true},
      "fig8_async": [ {...row...}, ... ],
      "scheduler_sweep": [
        {"n_parts": ..., "side": ..., "scheduler": "scalar"|"batched",
         "latency": ..., "poll_interval": ..., "record_every": ...,
         "max_steps": ..., "target_norm": ..., "best_s": ...,
         "times": [...], "turns": ..., "virtual_time": ...,
         "final_norm": ..., "digest": "...",
         "sched_stats": null | {"macro_turns": ..., "ladder_turns": ...,
                                "ladder_committed": ..., "turns": ...}},
        ...
      ],
      "summary": {"async_engine_speedup": ...,
                  "deterministic": true,
                  "ds_beats_ps_at_max_drop": true,
                  "scheduler_identical": true,
                  "batched_speedup": {"256": ..., "1024": ...},
                  "batched_speedup_max_p": ...}
    }
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import AsyncConfig, RunConfig, solve  # noqa: E402
from repro.core.async_exec import AsyncExecutor  # noqa: E402
from repro.core.async_southwell import AsyncDistributedSouthwell  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.core.distributed_southwell_block import (  # noqa: E402
    DistributedSouthwell,
)
from repro.experiments.fig8_async import run_fig8_async  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.matrices.fem import fem_poisson_2d  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.sparsela import symmetric_unit_diagonal_scale  # noqa: E402

SCHEMA = "repro.bench_async/v2"


def build_case(side: int, n_parts: int):
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(A.n_rows)
    x0 /= np.linalg.norm(A.matvec(x0))
    return system, x0, np.zeros(A.n_rows)


def bench_engines(side: int, n_parts: int, target: float,
                  repeats: int, log) -> dict:
    """Interleaved best-of-N time-to-target, both async engines."""
    system, x0, b = build_case(side, n_parts)
    obj_times, flat_times = [], []
    virtual_time = turns = None
    for _ in range(repeats):
        seed_engine = AsyncDistributedSouthwell(system)
        t0 = time.perf_counter()
        seed_engine.run(x0.copy(), b, max_turns=10 ** 9,
                        target_norm=target)
        obj_times.append(time.perf_counter() - t0)

        runner = DistributedSouthwell(system, seed=0)
        ex = AsyncExecutor(runner)
        ex.prepare(x0.copy(), b)        # steady-state: setup untimed
        t0 = time.perf_counter()
        hist = ex.run(max_steps=10 ** 9, target_norm=target,
                      stop_at_target=True)
        flat_times.append(time.perf_counter() - t0)
        virtual_time = hist.times[-1]
        turns = ex.turns
    rec = {
        "object_best_s": min(obj_times),
        "object_times": obj_times,
        "flat_best_s": min(flat_times),
        "flat_times": flat_times,
        "virtual_time_to_target": virtual_time,
        "turns": turns,
    }
    log(f"engines (P={n_parts}, side={side}, target={target}): "
        f"object {rec['object_best_s']:.3f}s  "
        f"flat {rec['flat_best_s']:.3f}s  "
        f"speedup {rec['object_best_s'] / rec['flat_best_s']:.2f}x")
    return rec


def bench_schedulers(cases: list[dict], repeats: int, log) -> tuple[
        list[dict], dict, bool]:
    """Scalar-vs-batched P-sweep on a latency-dominated DS config.

    Each case runs both schedulers on the *same* prebuilt system with a
    fresh runner per repeat; the solution digest, turn count and
    time-indexed history must be bit-identical between schedulers —
    that identity is the returned hard gate.
    """
    from repro.setupcache import get_setup

    rows: list[dict] = []
    speedups: dict = {}
    identical = True
    for case in cases:
        side, P = case["side"], case["n_parts"]
        A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
        _, system = get_setup(A, P, seed=0)
        rng = np.random.default_rng(0)
        x0 = rng.uniform(-1.0, 1.0, A.n_rows)
        b = np.zeros(A.n_rows)
        x0 = x0 / np.linalg.norm(b - A.matvec(x0))
        per = {}
        for sched in ("scalar", "batched"):
            times, rec = [], None
            for _ in range(repeats):
                runner = DistributedSouthwell(system, seed=0)
                ex = AsyncExecutor(runner, latency=case["latency"],
                                   poll_interval=case["poll_interval"],
                                   record_every=case["record_every"],
                                   scheduler=sched)
                ex.prepare(x0.copy(), b)    # setup untimed
                t0 = time.perf_counter()
                hist = ex.run(max_steps=case["max_steps"],
                              target_norm=case["target_norm"],
                              stop_at_target=case["target_norm"]
                              is not None)
                times.append(time.perf_counter() - t0)
                digest = hashlib.sha256(
                    np.ascontiguousarray(runner.solution())
                    .tobytes()).hexdigest()
                rec = {
                    "turns": ex.turns,
                    "virtual_time": hist.times[-1],
                    "final_norm": hist.residual_norms[-1],
                    "digest": digest,
                    "history_norms": list(hist.residual_norms),
                    "history_times": list(hist.times),
                    "sched_stats": getattr(ex, "sched_stats", None),
                }
            rec.update({"kind": "scheduler", "scheduler": sched,
                        "best_s": min(times), "times": times, **case})
            per[sched] = rec
        s, bt = per["scalar"], per["batched"]
        same = (s["digest"] == bt["digest"] and s["turns"] == bt["turns"]
                and s["history_norms"] == bt["history_norms"]
                and s["history_times"] == bt["history_times"])
        identical = identical and same
        speedup = s["best_s"] / bt["best_s"]
        speedups[str(P)] = speedup
        log(f"schedulers (P={P}, side={side}, "
            f"lat={case['latency'] * 1e6:.0f}us, "
            f"poll={case['poll_interval'] * 1e6:.2f}us): "
            f"scalar {s['best_s']:.3f}s  batched {bt['best_s']:.3f}s  "
            f"speedup {speedup:.2f}x  turns={s['turns']}  "
            f"identical={same}")
        for rec in (s, bt):
            # the full history rides in the doc only through the digest
            # comparison above; keep the artifact bounded
            rec.pop("history_norms")
            rec.pop("history_times")
            rows.append(rec)
    return rows, speedups, identical


def pinned_digest(smoke: bool) -> str:
    """The test suite's pinned straggler+drop DS scenario."""
    A = fem_poisson_2d(target_rows=900, seed=0).matrix
    plan = FaultPlan.uniform(drop=0.2, seed=7)
    acfg = AsyncConfig(speed_factors=((0, 0.5), (3, 0.5)))
    res = solve(A, method="distributed-southwell",
                config=RunConfig(n_parts=16, max_steps=30 if smoke else 60,
                                 seed=0, faults=plan, runtime="async",
                                 async_config=acfg))
    return hashlib.sha256(np.ascontiguousarray(res.x).tobytes()).hexdigest()


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (smaller problems, fewer repeats)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_async.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)
    log = (lambda s: None) if args.quiet else print

    t0 = time.perf_counter()
    if args.smoke:
        side, n_parts, target = 48, 64, 0.05
        repeats = args.repeats or 2
        fig8_cfg = dict(grid_dim=32, n_procs=16,
                        drop_sweep=(0.0, 0.2), max_steps=60)
        sweep_repeats = 1
        sweep_cases = [
            dict(side=48, n_parts=64, latency=400e-6,
                 poll_interval=0.25e-6, record_every=1024,
                 max_steps=200, target_norm=None),
            dict(side=96, n_parts=256, latency=400e-6,
                 poll_interval=0.25e-6, record_every=4096,
                 max_steps=200, target_norm=None),
        ]
    else:
        side, n_parts, target = 96, 256, 0.01
        repeats = args.repeats or 5
        fig8_cfg = dict(grid_dim=64, n_procs=64,
                        drop_sweep=(0.0, 0.1, 0.2), max_steps=100)
        sweep_repeats = 2
        # latency-dominated regime (DESIGN.md §5.15): 400 µs links,
        # 0.25 µs polls — the target norms are the measured reachable
        # values for these turn budgets, so "time to target" really
        # ends at the target instead of the step cap
        sweep_cases = [
            dict(side=96, n_parts=256, latency=400e-6,
                 poll_interval=0.25e-6, record_every=4096,
                 max_steps=500, target_norm=None),
            dict(side=192, n_parts=1024, latency=400e-6,
                 poll_interval=0.25e-6, record_every=4096,
                 max_steps=1500, target_norm=0.31),
        ]

    engine = bench_engines(side, n_parts, target, repeats, log)
    sweep_rows, speedups, sched_identical = bench_schedulers(
        sweep_cases, sweep_repeats, log)

    d1 = pinned_digest(args.smoke)
    d2 = pinned_digest(args.smoke)
    deterministic = d1 == d2
    log(f"determinism: {d1[:16]}… twice → "
        f"{'identical' if deterministic else 'DIFFER'}")

    rows = run_fig8_async(**fig8_cfg)
    max_drop = max(fig8_cfg["drop_sweep"])
    by = {(r["drop"], r["method"]): r for r in rows}
    ds = by[(max_drop, "DS")]["time_to_target"]
    ps = by[(max_drop, "PS")]["time_to_target"]
    ds_wins = ds is not None and (ps is None or ds < ps)
    log(f"fig8 analog @ drop={max_drop}: DS time={ds}  PS time={ps}  "
        f"DS wins: {ds_wins}")

    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"side": side, "n_parts": n_parts,
                   "target_norm": target, "repeats": repeats,
                   "fig8": {k: list(v) if isinstance(v, tuple) else v
                            for k, v in fig8_cfg.items()},
                   "scheduler_sweep": sweep_cases,
                   "scheduler_repeats": sweep_repeats},
        "engine": engine,
        "determinism": {"digest": d1, "identical": deterministic},
        "fig8_async": rows,
        "scheduler_sweep": sweep_rows,
        "summary": {
            "async_engine_speedup": (engine["object_best_s"]
                                     / engine["flat_best_s"]),
            "deterministic": deterministic,
            "ds_beats_ps_at_max_drop": ds_wins,
            "scheduler_identical": sched_identical,
            "batched_speedup": speedups,
            "batched_speedup_max_p": speedups[
                str(max(c["n_parts"] for c in sweep_cases))],
        },
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} ({time.perf_counter() - t0:.1f} s)")
    if not deterministic:
        print("ERROR: async runs are nondeterministic", file=sys.stderr)
        return 1
    if not ds_wins:
        print("ERROR: DS does not beat PS under max drop", file=sys.stderr)
        return 1
    if not sched_identical:
        print("ERROR: batched scheduler diverged from the scalar oracle",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
