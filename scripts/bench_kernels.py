#!/usr/bin/env python
"""Kernel microbenchmarks — the repo's performance trajectory harness.

Times the primitives every experiment bottoms out in (CSR matvec,
Gauss-Seidel sweep, Jacobi sweep) on 2D Poisson operators at several
sizes, across every available kernel backend, plus one full parallel
step of each distributed block method (DS / PS / Block Jacobi).  Results
are written to ``BENCH_kernels.json`` at the repository root in a stable
schema so future PRs can be judged against the recorded trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py            # full run
    PYTHONPATH=src python scripts/bench_kernels.py --smoke    # CI-sized

Schema (``BENCH_kernels.json``)::

    {
      "schema": "repro.bench_kernels/v1",
      "smoke": false,
      "environment": {"python": ..., "numpy": ..., "scipy": ...,
                      "numba": null | version, "platform": ...},
      "config": {"grid_sides": [...], "repeats": ..., "backends": [...]},
      "results": [
        {"kind": "kernel", "kernel": "matvec", "backend": "scipy",
         "n": 100489, "nnz": 501125, "inner_iters": 32, "repeats": 5,
         "best_s": ..., "mean_s": ...},
        {"kind": "block_step", "method": "distributed-southwell",
         "n": ..., "n_parts": ..., "steps": ..., "best_s": ...,
         "mean_s": ...},
        ...
      ]
    }

``best_s``/``mean_s`` are per-call seconds (best / mean over repeats of
an inner loop).  The reference backend's per-row python solves are
capped: anything projected past the per-case time budget is measured
once and marked ``"capped": true``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import DistributedSouthwell, ParallelSouthwell  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.solvers.block_jacobi import BlockJacobi  # noqa: E402
from repro.sparsela import (  # noqa: E402
    available_backends,
    symmetric_unit_diagonal_scale,
    use_backend,
)
from repro.sparsela.kernels import (  # noqa: E402
    gauss_seidel_sweep,
    jacobi_sweep,
)

SCHEMA = "repro.bench_kernels/v1"
#: per-(kernel, backend, size) wall-clock budget in seconds
TIME_BUDGET = 2.0


def _time_call(fn, repeats: int, budget: float = TIME_BUDGET) -> dict:
    """Best/mean per-call seconds; auto-sized inner loop under a budget."""
    fn()                                    # warm-up (caches, JIT)
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    if once * repeats > budget:
        return {"inner_iters": 1, "repeats": 1, "best_s": once,
                "mean_s": once, "capped": True}
    # size the inner loop to ~budget/(2*repeats) per rep, at least 3 calls
    inner = max(3, int(budget / (2.0 * repeats * max(once, 1e-9))))
    inner = min(inner, 1000)
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - t0) / inner)
    return {"inner_iters": inner, "repeats": repeats,
            "best_s": min(samples), "mean_s": float(np.mean(samples)),
            "capped": False}


def bench_kernels(sides, backends, repeats, log) -> list[dict]:
    results = []
    for side in sides:
        A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
        n = A.n_rows
        rng = np.random.default_rng(0)
        x = rng.standard_normal(n)
        b = rng.standard_normal(n)
        out = np.empty(n)
        for name in backends:
            with use_backend(name):
                cases = {
                    "matvec": lambda: A.matvec(x, out=out),
                    "gs_sweep": lambda: gauss_seidel_sweep(A, x, b),
                    "jacobi_sweep": lambda: jacobi_sweep(A, x, b),
                }
                for kernel, fn in cases.items():
                    rec = {"kind": "kernel", "kernel": kernel,
                           "backend": name, "n": n, "nnz": A.nnz}
                    rec.update(_time_call(fn, repeats))
                    results.append(rec)
                    log(f"  {kernel:<14} {name:<10} n={n:<8} "
                        f"best={rec['best_s'] * 1e3:9.3f} ms"
                        + ("  [capped]" if rec.get("capped") else ""))
    return results


def bench_block_steps(side, n_parts, steps, repeats, log) -> list[dict]:
    """One full parallel step of each distributed method (default backend)."""
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    b = np.zeros(A.n_rows)
    results = []
    for cls in (BlockJacobi, ParallelSouthwell, DistributedSouthwell):
        method = cls(system)
        method.setup(x0, b)
        method.step()                       # warm-up step
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(steps):
                method.step()
            samples.append((time.perf_counter() - t0) / steps)
        rec = {"kind": "block_step", "method": method.name, "n": A.n_rows,
               "n_parts": n_parts, "steps": steps, "repeats": repeats,
               "best_s": min(samples), "mean_s": float(np.mean(samples))}
        results.append(rec)
        log(f"  step {method.name:<24} n={A.n_rows:<8} P={n_parts:<4} "
            f"best={rec['best_s'] * 1e3:9.3f} ms")
    return results


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (small grids, few repeats)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_kernels.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--sides", type=int, nargs="*", default=None,
                    help="Poisson grid sides (rows = side^2)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per case")
    ap.add_argument("--backends", nargs="*", default=None,
                    help="backends to time (default: all available)")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    sides = args.sides
    if sides is None:
        sides = [32, 64] if args.smoke else [100, 224, 317]
    repeats = args.repeats or (3 if args.smoke else 5)
    backends = args.backends or available_backends()
    log = (lambda s: None) if args.quiet else print

    log(f"backends: {backends}; grid sides: {sides} "
        f"(rows: {[s * s for s in sides]})")
    t0 = time.perf_counter()
    results = bench_kernels(sides, backends, repeats, log)
    step_side = 48 if args.smoke else 150
    step_parts = 16 if args.smoke else 64
    step_count = 2 if args.smoke else 4
    results += bench_block_steps(step_side, step_parts, step_count,
                                 repeats, log)

    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"grid_sides": list(sides), "repeats": repeats,
                   "backends": list(backends),
                   "block_step": {"side": step_side, "n_parts": step_parts,
                                  "steps": step_count}},
        "results": results,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} "
        f"({len(results)} records, {time.perf_counter() - t0:.1f} s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
