#!/usr/bin/env python
"""Artifact-evaluation driver: regenerate every paper artifact in one go.

The SC17 artifact's ``AllMatJob.sh`` runs its sweep scripts over all 14
matrices; this is the reproduction's equivalent.  It regenerates every
table and figure at the chosen scale, writes each one's raw rows to
``<outdir>/<name>.csv`` (plus a JSON copy), and prints a summary.

Usage::

    python scripts/reproduce_all.py [--scale paper|small] [--outdir results]
                                    [--workers N] [--trace DIR]

``--workers N`` (or ``REPRO_WORKERS=N``) farms each experiment's
(problem, method) sweep out to a process pool with an on-disk result
cache (see :mod:`repro.experiments.parallel`); the default is serial.
``--trace DIR`` (or ``REPRO_TRACE=DIR``) records one event-trace file
per run into DIR (summarize with ``python -m repro trace``); traced runs
key separately in the sweep cache, so cached untraced results are not
mistaken for traced ones.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.analysis.export import rows_to_csv, rows_to_json
from repro.analysis.tables import format_table
from repro.experiments.__main__ import EXPERIMENTS, _run
from repro.experiments import get_scale


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "small"))
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for the sweeps "
                             "(default: REPRO_WORKERS or serial)")
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="record one event-trace file per run into DIR "
                             "(default: REPRO_TRACE or off)")
    args = parser.parse_args(argv)
    if args.workers is not None:
        # suite_runs and the figure sweeps read this knob
        os.environ["REPRO_WORKERS"] = str(max(args.workers, 0))
    if args.trace is not None:
        # run_method and the sweep cache key read this knob
        os.environ["REPRO_TRACE"] = args.trace
    scale = get_scale(args.scale)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    t_start = time.perf_counter()
    for name in EXPERIMENTS:
        t0 = time.perf_counter()
        rows = _run(name, scale)
        dt = time.perf_counter() - t0
        rows_to_csv(rows, outdir / f"{name}.csv")
        rows_to_json(rows, outdir / f"{name}.json")
        print(format_table(rows, title=f"{name} ({scale.name} scale, "
                                       f"{dt:.1f}s)", digits=4))
        print()
    total = time.perf_counter() - t_start
    print(f"all {len(EXPERIMENTS)} experiments regenerated in "
          f"{total:.0f}s; raw rows in {outdir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
