#!/usr/bin/env python
"""Runtime message-plane benchmark — object plane vs flat-buffer plane.

Times full parallel steps of each distributed block method (DS / PS /
Block Jacobi) on 2D Poisson problems partitioned at increasing process
counts, under both message planes: ``object`` (dict payloads + Message
objects — the seed implementation) and ``flat`` (preallocated per-edge
mailboxes, DESIGN.md §5.8).  Both runs of a pair must agree **exactly**:
the benchmark records (and the paired check verifies) a digest of the
per-step convergence history plus total message and byte counts — a pair
that disagrees fails the whole benchmark, because a fast-but-different
runtime is a bug, not a speedup.

Results are written to ``BENCH_runtime.json`` at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_runtime.py            # full run
    PYTHONPATH=src python scripts/bench_runtime.py --smoke    # CI-sized

Schema (``BENCH_runtime.json``)::

    {
      "schema": "repro.bench_runtime/v1",
      "smoke": false,
      "environment": {"python": ..., "numpy": ..., "scipy": ...,
                      "numba": null | version, "platform": ...},
      "config": {"n_procs": [...], "steps": ..., "repeats": ...},
      "results": [
        {"method": "distributed-southwell", "runtime": "flat",
         "n": 9216, "n_parts": 256, "steps": 10, "repeats": 3,
         "best_step_s": ..., "mean_step_s": ...,
         "history_digest": "...", "total_messages": ...,
         "total_bytes": ...},
        ...
      ],
      "summary": {"ds_p256_speedup": ..., "pairs_identical": true}
    }

``best_step_s``/``mean_step_s`` are per-parallel-step seconds.  The
summary's ``ds_p256_speedup`` (object / flat per-step time for DS at the
largest P) is the PR acceptance metric (target: >= 3x).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import DistributedSouthwell, ParallelSouthwell  # noqa: E402
from repro.core.blockdata import build_block_system  # noqa: E402
from repro.matrices.poisson import poisson_2d  # noqa: E402
from repro.partition import partition  # noqa: E402
from repro.runtime import use_runtime  # noqa: E402
from repro.solvers.block_jacobi import BlockJacobi  # noqa: E402
from repro.sparsela import symmetric_unit_diagonal_scale  # noqa: E402

SCHEMA = "repro.bench_runtime/v1"
METHOD_CLASSES = (BlockJacobi, ParallelSouthwell, DistributedSouthwell)
RUNTIMES = ("object", "flat")
#: problem side per process count — keeps subdomains in the paper's
#: ~20-50-row regime while the interpreter overhead scales with P
SIDES = {16: 48, 64: 64, 256: 96}


def build_case(n_parts: int, side: int):
    A = symmetric_unit_diagonal_scale(poisson_2d(side)).matrix
    part = partition(A, n_parts, method="grid", grid_shape=(side, side))
    system = build_block_system(A, part)
    rng = np.random.default_rng(1)
    x0 = rng.uniform(-1.0, 1.0, A.n_rows)
    return A, system, x0, np.zeros(A.n_rows)


def run_one(cls, system, x0, b, runtime: str, steps: int,
            repeats: int) -> dict:
    """Time ``steps`` parallel steps under one message plane.

    Timing repeats restart the method from scratch (``setup`` resets all
    state), so every repeat times the same trajectory; the digest and the
    communication totals come from the final repeat.
    """
    best = []
    with use_runtime(runtime):
        for _ in range(repeats):
            method = cls(system)
            method.setup(x0, b)
            norms = []
            t0 = time.perf_counter()
            for _ in range(steps):
                method.step()
                norms.append(method.global_norm())
            best.append((time.perf_counter() - t0) / steps)
        expected_flat = runtime == "flat" and method._flat_supported()
        assert method._use_flat == expected_flat
    h = hashlib.sha256()
    h.update(np.asarray(norms, dtype=np.float64).tobytes())
    h.update(np.asarray(method.norms, dtype=np.float64).tobytes())
    h.update(str(method.total_relaxations).encode())
    stats = method.engine.stats
    return {
        "method": method.name,
        "runtime": runtime,
        "n": system.n,
        "n_parts": system.n_parts,
        "steps": steps,
        "repeats": repeats,
        "best_step_s": min(best),
        "mean_step_s": float(np.mean(best)),
        "history_digest": h.hexdigest(),
        "total_messages": stats.total_messages,
        "total_bytes": stats.total_bytes,
    }


def bench(n_procs_list, steps, repeats, log) -> tuple[list[dict], dict]:
    results = []
    pairs_identical = True
    ds_speedups = {}
    for n_parts in n_procs_list:
        side = SIDES.get(n_parts, int(6 * np.sqrt(n_parts)))
        _, system, x0, b = build_case(n_parts, side)
        log(f"P={n_parts} (n={system.n}, side={side}):")
        for cls in METHOD_CLASSES:
            pair = {}
            for runtime in RUNTIMES:
                rec = run_one(cls, system, x0, b, runtime, steps, repeats)
                results.append(rec)
                pair[runtime] = rec
                log(f"  {rec['method']:<24} {runtime:<7} "
                    f"step={rec['best_step_s'] * 1e3:9.3f} ms  "
                    f"msgs={rec['total_messages']}")
            same = all(
                pair["object"][k] == pair["flat"][k]
                for k in ("history_digest", "total_messages", "total_bytes"))
            if not same:
                pairs_identical = False
                log(f"  !! {pair['object']['method']} P={n_parts}: "
                    "object and flat runs DISAGREE")
            speedup = (pair["object"]["best_step_s"]
                       / pair["flat"]["best_step_s"])
            log(f"    speedup {speedup:.2f}x")
            if pair["object"]["method"] == "distributed-southwell":
                ds_speedups[n_parts] = speedup
    top = max(n_procs_list)
    summary = {
        "pairs_identical": pairs_identical,
        "ds_speedups": {str(p): s for p, s in ds_speedups.items()},
        f"ds_p{top}_speedup": ds_speedups.get(top),
    }
    return results, summary


def environment() -> dict:
    import numpy
    import scipy
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "numba": numba_version,
        "platform": platform.platform(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run (fewer process counts / repeats)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_runtime.json",
                    help="output JSON path (default: repo root)")
    ap.add_argument("--n-procs", type=int, nargs="*", default=None,
                    help="process counts to bench (default: 16 64 256)")
    ap.add_argument("--steps", type=int, default=None,
                    help="parallel steps per timing run")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    n_procs = args.n_procs or ([16, 64] if args.smoke else [16, 64, 256])
    steps = args.steps or (5 if args.smoke else 10)
    repeats = args.repeats or 3
    log = (lambda s: None) if args.quiet else print

    t0 = time.perf_counter()
    results, summary = bench(n_procs, steps, repeats, log)
    doc = {
        "schema": SCHEMA,
        "smoke": bool(args.smoke),
        "environment": environment(),
        "config": {"n_procs": list(n_procs), "steps": steps,
                   "repeats": repeats,
                   "sides": {str(p): SIDES.get(p) for p in n_procs}},
        "results": results,
        "summary": summary,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log(f"wrote {args.output} "
        f"({len(results)} records, {time.perf_counter() - t0:.1f} s)")
    if not summary["pairs_identical"]:
        print("ERROR: object/flat pairs disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
