"""Stragglers in simulated time: who pays when ranks slow down?

Walkthrough of the event-driven async runtime behind ``solve()``
(DESIGN.md §5.14).  Every rank owns a virtual clock priced by the cost
model; ``AsyncConfig(speed_factors=...)`` makes chosen ranks compute at
a fraction of full speed, and staleness then *emerges from simulated
time* — a straggler's neighbors race ahead on old Γ estimates instead
of waiting at an epoch barrier.

The sweep runs DS / PS / Block Jacobi to the same residual target three
ways — no stragglers, four ranks at half speed, and stragglers plus 20%
message drop — and reports *simulated seconds to target*:

- Block Jacobi relaxes unconditionally, so it reaches the target fast
  in wall-of-clock terms but burns an order of magnitude more
  communication;
- Parallel Southwell's exact-neighborhood criterion tolerates the slow
  clocks but collapses once drops corrupt its explicit residual
  updates (a *reported* deadlock, never a hang);
- Distributed Southwell's local estimates absorb both: it keeps
  converging, spending repair messages instead of time.

Run:  PYTHONPATH=src python examples/async_stragglers.py
"""

import numpy as np

from repro.api import AsyncConfig, RunConfig, solve
from repro.faults import FaultPlan
from repro.matrices.poisson import poisson_2d
from repro.sparsela import symmetric_unit_diagonal_scale

GRID, P, TARGET, STEPS = 64, 64, 0.1, 100
STRAGGLERS = tuple((r, 0.5) for r in (0, 16, 32, 48))  # 2x slower


def run(method: str, speed_factors, plan) -> dict:
    A = symmetric_unit_diagonal_scale(poisson_2d(GRID)).matrix
    acfg = AsyncConfig(speed_factors=speed_factors)
    res = solve(A, method=method,
                config=RunConfig(n_parts=P, max_steps=STEPS, seed=0,
                                 faults=plan, runtime="async",
                                 async_config=acfg))
    return {
        "t": res.history.cost_to_reach(TARGET, axis="times"),
        "comm": res.comm_cost,
        "repairs": res.repairs,
        "degraded": res.degraded,
        "idle": (np.mean(res.rank_idle) / max(np.mean(res.rank_clocks),
                                              1e-300)),
    }


def main() -> None:
    print(f"2D Poisson {GRID}x{GRID}, P={P}, target ‖r‖={TARGET}, "
          f"simulated time via runtime='async'\n")
    scenarios = [
        ("uniform", None, None),
        ("4 stragglers (2x slower)", STRAGGLERS, None),
        ("stragglers + 20% drop", STRAGGLERS,
         FaultPlan.uniform(drop=0.2, seed=7)),
    ]
    hdr = (f"{'scenario':28s} {'method':4s} {'sim-s to target':>16s} "
           f"{'comm/proc':>10s} {'repairs':>8s}")
    print(hdr)
    print("-" * len(hdr))
    for label, speed, plan in scenarios:
        for method, short in (("block-jacobi", "BJ"),
                              ("parallel-southwell", "PS"),
                              ("distributed-southwell", "DS")):
            r = run(method, speed, plan)
            t = ("never †" if r["t"] is None
                 else f"{r['t'] * 1e3:13.3f} ms")
            print(f"{label:28s} {short:4s} {t:>16s} "
                  f"{r['comm']:>10.1f} {r['repairs']:>8d}")
        print()
    print("† = ended with a reported deadlock (SolveResult.degraded), "
          "not a hang.")


if __name__ == "__main__":
    main()
