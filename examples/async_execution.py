"""Asynchronous execution: the same algorithm, no barriers.

Runs Distributed Southwell over both execution models — the lockstep
engine (epoch-synchronised parallel steps, as in the paper's Algorithms)
and the discrete-event asynchronous engine (per-process clocks, the
Casper-progressed regime) — then slows one process to quarter speed and
shows who pays: the lockstep all-active Block Jacobi pays nearly the full
4x, Distributed Southwell's greedy criterion routes work around the
straggler, and the asynchronous execution barely notices it.

Run:  python examples/async_execution.py
"""

import numpy as np

from repro.core import AsyncDistributedSouthwell, DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices import load_problem
from repro.partition import partition
from repro.runtime import CostModel
from repro.solvers import BlockJacobi

# compute-bound machine so a slow *CPU* actually matters
MACHINE = CostModel(alpha=2.0e-6, alpha_recv=2.0e-6, beta=1.6e-10,
                    gamma=2.5e-8)


def main() -> None:
    problem = load_problem("msdoor")
    n_procs = 32
    part = partition(problem.matrix, n_procs, seed=0)
    system = build_block_system(problem.matrix, part)
    x0, b = problem.initial_state(seed=0)
    print(f"problem: {problem.summary()}, P = {n_procs}, target ‖r‖ = 0.1")

    slow = np.ones(n_procs)
    slow[10] = 0.25

    def lockstep(cls, factors):
        m = cls(system, cost_model=MACHINE, speed_factors=factors)
        m.run(x0, b, max_steps=300, target_norm=0.1, stop_at_target=True)
        return m.engine.stats.elapsed_time()

    def asynchronous(factors):
        a = AsyncDistributedSouthwell(system, cost_model=MACHINE,
                                      speed_factors=factors)
        a.run(x0, b, max_turns=2_000_000, target_norm=0.1,
              record_every=4 * n_procs)
        return a.engine.elapsed

    rows = [
        ("Block Jacobi, lockstep", lockstep(BlockJacobi, None),
         lockstep(BlockJacobi, slow)),
        ("Dist Southwell, lockstep",
         lockstep(DistributedSouthwell, None),
         lockstep(DistributedSouthwell, slow)),
        ("Dist Southwell, async", asynchronous(None), asynchronous(slow)),
    ]
    print(f"\n{'configuration':28s} {'uniform':>10s} {'straggler':>10s} "
          f"{'penalty':>8s}")
    for name, t0, t1 in rows:
        print(f"{name:28s} {t0 * 1e3:8.3f}ms {t1 * 1e3:8.3f}ms "
              f"{t1 / t0:7.2f}x")
    print("\none process at quarter speed: lockstep Block Jacobi pays for "
          "it every step;\nthe Southwell criterion mostly works around it; "
          "asynchrony absorbs it.")


if __name__ == "__main__":
    main()
