"""Why Distributed Southwell's deadlock-avoidance messages exist.

The paper's Section 2.4 explains that Parallel Southwell with *stale*
residual estimates — the ICCS'16 scheme — deadlocks: every process can
believe a neighbor has a larger residual, so nobody relaxes, forever.
Distributed Southwell fixes this with the Γ̃ mirror: a process that
detects a neighbor over-estimating it sends one explicit update.

This example runs Distributed Southwell twice on the same problem — once
with the deadlock-avoidance messages disabled (the broken scheme) and
once with the full Algorithm 3 — and shows the first stalls while the
second converges.

Run:  python examples/deadlock_demo.py
"""

import numpy as np

from repro.core import DistributedSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices import fem_poisson_2d
from repro.partition import partition


def run(system, x0, b, deadlock_avoidance: bool, max_steps: int = 60):
    method = DistributedSouthwell(system,
                                  deadlock_avoidance=deadlock_avoidance)
    method.setup(x0, b)
    idle_streak = 0
    for step in range(max_steps):
        active = method.step()
        if active == 0:
            idle_streak += 1
            if idle_streak >= 3:
                return method, step + 1, True   # stalled: nobody relaxes
        else:
            idle_streak = 0
    return method, max_steps, False


def main() -> None:
    problem = fem_poisson_2d(target_rows=1000, seed=0)
    x0, b = problem.initial_state(seed=0)
    part = partition(problem.matrix, 16, seed=0)
    system = build_block_system(problem.matrix, part)
    print(f"problem: {problem.summary()}, P = 16\n")

    broken, steps_b, stalled_b = run(system, x0, b, deadlock_avoidance=False)
    fixed, steps_f, stalled_f = run(system, x0, b, deadlock_avoidance=True)

    print(f"{'variant':34s} {'steps':>6s} {'stalled':>8s} {'‖r‖ final':>10s}")
    print(f"{'no deadlock avoidance (ICCS16)':34s} {steps_b:6d} "
          f"{stalled_b!s:>8s} {broken.global_norm():10.2e}")
    print(f"{'Algorithm 3 (this paper)':34s} {steps_f:6d} "
          f"{stalled_f!s:>8s} {fixed.global_norm():10.2e}")

    assert stalled_b, "expected the estimate-only scheme to stall"
    assert not stalled_f and fixed.global_norm() < broken.global_norm()
    print("\nwithout the explicit residual updates, every process ends up "
          "believing some\nneighbor has the larger residual and the "
          "iteration freezes — exactly the\nfailure the paper's Γ̃ "
          "mechanism eliminates.")


if __name__ == "__main__":
    main()
