"""The paper's Figure 4, with real numbers: one parallel step on a chain.

Figure 4 illustrates a parallel step of Parallel Southwell (a) and
Distributed Southwell (b) on four processes in a line.  This example
builds an actual four-subdomain chain (a 1D Laplacian split into four
blocks), seeds it so the rightmost process holds the largest residual —
the figure's setup — and prints each phase: who relaxes, what each
process believes about its neighbors (Γ), what each believes its
neighbors believe about it (Γ̃, DS only), and every message sent.

Run:  python examples/figure4_walkthrough.py
"""

import numpy as np

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices.poisson import poisson_1d
from repro.partition import partition
from repro.sparsela import symmetric_unit_diagonal_scale


def build_chain():
    """A 1D Laplacian over 4 contiguous blocks: P0 - P1 - P2 - P3."""
    A = symmetric_unit_diagonal_scale(poisson_1d(40)).matrix
    part = partition(A, 4, method="strided")
    system = build_block_system(A, part)
    # seed the residual ramp of Figure 4: ‖r₀‖ < ‖r₁‖ < ‖r₂‖ < ‖r₃‖
    rng = np.random.default_rng(4)
    x0 = rng.uniform(-1, 1, 40) * np.repeat([0.1, 0.2, 0.3, 0.4], 10)
    b = np.zeros(40)
    x0 /= np.linalg.norm(A.matvec(x0))
    return system, x0, b


def show_state(method, label, with_tilde):
    print(f"  {label}:")
    print("    ‖r_p‖  = "
          + "  ".join(f"P{p}:{method.norms[p]:.3f}" for p in range(4)))
    gam = []
    for p in range(4):
        ests = ", ".join(
            f"‖r_{int(q)}‖≈{np.sqrt(method.gamma_sq[p][i]):.3f}"
            for i, q in enumerate(method.system.neighbors_of(p)))
        gam.append(f"P{p}:[{ests}]")
    print("    Γ (estimates of neighbors) = " + "  ".join(gam))
    if with_tilde:
        til = []
        for p in range(4):
            ests = ", ".join(
                f"P{int(q)} thinks {np.sqrt(method.tilde_sq[p][i]):.3f}"
                for i, q in enumerate(method.system.neighbors_of(p)))
            til.append(f"P{p}:[{ests}]")
        print("    Γ̃ (mirror of their beliefs) = " + "  ".join(til))


def trace_step(cls, label, with_tilde):
    system, x0, b = build_chain()
    method = cls(system)
    method.setup(x0, b)

    sent = []
    original_put = method.engine.put

    def logging_put(src, dst, category, payload, nbytes=None):
        sent.append(f"P{src} --{category}--> P{dst}")
        return original_put(src, dst, category, payload, nbytes=nbytes)

    method.engine.put = logging_put
    print(f"\n=== {label} — one parallel step on the chain "
          "P0 - P1 - P2 - P3 ===")
    show_state(method, "initial state (Figure 4 ramp)", with_tilde)
    n_relaxed = method.step()
    print(f"  phase 1: {n_relaxed} process(es) relaxed")
    print("  messages: " + ("; ".join(sent) if sent else "(none)"))
    show_state(method, "after the step", with_tilde)


def main() -> None:
    trace_step(ParallelSouthwell, "Parallel Southwell (Figure 4a)", False)
    trace_step(DistributedSouthwell, "Distributed Southwell (Figure 4b)",
               True)
    print("\nNote the difference in 'residual' traffic: PS broadcasts its "
          "new norm after\nevery change; DS sends an explicit update only "
          "where Γ̃ shows a neighbor\nover-estimating it.")


if __name__ == "__main__":
    main()
