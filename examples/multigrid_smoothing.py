"""Distributed Southwell as a multigrid smoother (the paper's Section 4.1).

Solves the 2D Poisson equation with 9 V-cycles on grids 15² → 255²,
comparing three smoother configurations at matched relaxation budgets:
Gauss-Seidel (1 sweep), Distributed Southwell at the same budget, and at
*half* the budget.  The punchline — reproduced here — is grid-size-
independent convergence in every configuration, with Distributed
Southwell more effective per relaxation than Gauss-Seidel.

Uses the ``solve()`` front door with ``method="mg"`` — the same path
``python -m repro --method mg`` drives.  The block-machinery smoothers
("ds"/"ps"/"bj") hang off the same ``MultigridConfig.smoother`` knob.

Run:  python examples/multigrid_smoothing.py
"""

import numpy as np

from repro.api import MultigridConfig, RunConfig, solve
from repro.matrices.poisson import poisson_2d
from repro.multigrid import valid_grid_dims


def rel_resid(dim: int, smoother: str, budget: float) -> float:
    """Relative residual after 9 V-cycles of the Figure 6 protocol."""
    h = 1.0 / (dim + 1)
    A = poisson_2d(dim).scale(1.0 / h ** 2)
    rng = np.random.default_rng(0)
    b = rng.uniform(-1.0, 1.0, dim * dim)
    cfg = RunConfig(seed=0, mg=MultigridConfig(smoother=smoother,
                                               budget=budget))
    result = solve(A, b, method="mg", x0=np.zeros(dim * dim), config=cfg)
    return result.final_norm / result.history.initial_norm


def main() -> None:
    print(f"{'grid':>6s} {'GS 1-sweep':>12s} {'DS 1/2-sweep':>13s} "
          f"{'DS 1-sweep':>12s}")
    for dim in valid_grid_dims():
        gs = rel_resid(dim, "gs", 1.0)
        ds_half = rel_resid(dim, "scalar-ds", 0.5)
        ds_full = rel_resid(dim, "scalar-ds", 1.0)
        print(f"{dim:4d}²  {gs:12.2e} {ds_half:13.2e} {ds_full:12.2e}")
    print("\nrows are flat top-to-bottom: convergence is independent of "
          "grid size,\nand DS at the same relaxation budget beats GS — "
          "the paper's Figure 6.")


if __name__ == "__main__":
    main()
