"""Distributed Southwell as a multigrid smoother (the paper's Section 4.1).

Solves the 2D Poisson equation with 9 V-cycles on grids 15² → 255²,
comparing three smoother configurations at matched relaxation budgets:
Gauss-Seidel (1 sweep), Distributed Southwell at the same budget, and at
*half* the budget.  The punchline — reproduced here — is grid-size-
independent convergence in every configuration, with Distributed
Southwell more effective per relaxation than Gauss-Seidel.

Run:  python examples/multigrid_smoothing.py
"""

from repro.multigrid import (
    DistributedSouthwellSmoother,
    GaussSeidelSmoother,
    valid_grid_dims,
    vcycle_experiment_run,
)


def main() -> None:
    print(f"{'grid':>6s} {'GS 1-sweep':>12s} {'DS 1/2-sweep':>13s} "
          f"{'DS 1-sweep':>12s}")
    for dim in valid_grid_dims():
        gs = vcycle_experiment_run(dim, lambda: GaussSeidelSmoother(1),
                                   seed=0)
        ds_half = vcycle_experiment_run(
            dim, lambda: DistributedSouthwellSmoother(0.5), seed=0)
        ds_full = vcycle_experiment_run(
            dim, lambda: DistributedSouthwellSmoother(1.0), seed=0)
        print(f"{dim:4d}²  {gs:12.2e} {ds_half:13.2e} {ds_full:12.2e}")
    print("\nrows are flat top-to-bottom: convergence is independent of "
          "grid size,\nand DS at the same relaxation budget beats GS — "
          "the paper's Figure 6.")


if __name__ == "__main__":
    main()
