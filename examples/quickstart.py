"""Quickstart: Distributed Southwell vs Parallel Southwell vs Block Jacobi.

Builds an irregular-mesh FEM Poisson problem, partitions it over 32
simulated processes, runs all three distributed methods under the paper's
protocol (random ``x0`` scaled so ``‖r⁰‖₂ = 1``, ``b = 0``, one local
Gauss-Seidel sweep per relaxation, 50 parallel steps), and prints the
headline comparison: Distributed Southwell reaches the same accuracy with
a fraction of the communication.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RunConfig, matrices, solve


def main() -> None:
    problem = matrices.fem_poisson_2d(target_rows=3081, seed=0)
    print(f"problem: {problem.summary()}")
    x0, b = problem.initial_state(seed=0)
    cfg = RunConfig(n_parts=32, max_steps=50)

    print(f"\n{'method':24s} {'‖r‖ final':>10s} {'steps->0.1':>10s} "
          f"{'msgs/proc':>10s} {'res msgs':>9s}")
    for method in ("block-jacobi", "parallel-southwell",
                   "distributed-southwell"):
        result = solve(problem.matrix, b, method=method, x0=x0.copy(),
                       config=cfg)
        steps = result.history.cost_to_reach(0.1, axis="parallel_steps")
        print(f"{result.method:24s} {result.final_norm:10.2e} "
              f"{steps if steps is None else round(steps, 1)!s:>10s} "
              f"{result.comm_cost:10.1f} {result.residual_comm:9.1f}")

    # the solution is a real solution: check it against the residual claim
    result = solve(problem.matrix, b, method="distributed-southwell",
                   x0=x0.copy(), config=cfg)
    r = b - problem.matrix.matvec(result.x)
    assert np.isclose(np.linalg.norm(r), result.final_norm, atol=1e-12)
    print("\nresidual bookkeeping verified against a fresh matvec ✓")


if __name__ == "__main__":
    main()
