"""Strong-scaling sweep on one suite matrix (Figures 8/9 in miniature).

Sweeps the simulated process count on the bone010 analog and prints, per
method: simulated time to ``‖r‖ = 0.1`` († where unreachable in 50
steps) and the residual after 50 steps.  Watch Block Jacobi go from
"fastest" at small P to divergent as subdomains shrink, while the
Southwell methods barely degrade.

Run:  python examples/strong_scaling.py
"""

from repro.analysis.tables import format_table
from repro.api import RunConfig, solve
from repro.matrices import load_problem


def main() -> None:
    problem = load_problem("bone010")
    print(f"problem: {problem.summary()}\n")

    rows = []
    for n_procs in (4, 16, 64, 256):
        row = {"P": n_procs}
        for method in ("block-jacobi", "parallel-southwell",
                       "distributed-southwell"):
            res = solve(problem.matrix, method=method,
                        config=RunConfig(n_parts=n_procs, max_steps=50,
                                         seed=0))
            label = {"block-jacobi": "BJ", "parallel-southwell": "PS",
                     "distributed-southwell": "DS"}[method]
            t = res.history.cost_to_reach(0.1, axis="times")
            row[f"time_{label}"] = None if t is None else t * 1e3
            row[f"norm50_{label}"] = res.final_norm
        rows.append(row)

    print(format_table(
        rows, columns=["P", "time_BJ", "time_PS", "time_DS"],
        title="simulated milliseconds to ‖r‖ = 0.1 († = not in 50 steps)",
        digits=3))
    print()
    print(format_table(
        rows, columns=["P", "norm50_BJ", "norm50_PS", "norm50_DS"],
        title="‖r‖ after 50 parallel steps (‖r⁰‖ = 1; >1 means divergence)",
        digits=4))


if __name__ == "__main__":
    main()
