"""Block methods as CG preconditioners (the paper's motivating use).

The paper positions Distributed Southwell "as a competitor to Block
Jacobi for preconditioning".  This example solves an elasticity system
with flexible CG, preconditioned by a few parallel steps of each block
method with exact local subdomain solves.

The budgets are matched the way the paper matches smoothers: Block Jacobi
relaxes every subdomain every step, so 2 BJ steps ≈ 2 relaxations per
subdomain; the Southwell methods relax roughly a quarter of the
subdomains per step, so they get 8 steps for the same relaxation budget —
and they spend far fewer messages per application (Table 4).

Run:  python examples/preconditioned_cg.py
"""

import numpy as np

from repro.core import DistributedSouthwell, ParallelSouthwell
from repro.core.blockdata import build_block_system
from repro.matrices import elasticity_fem_2d
from repro.partition import partition
from repro.solvers import BlockJacobi, conjugate_gradient
from repro.solvers.krylov import block_method_preconditioner


def main() -> None:
    problem = elasticity_fem_2d(target_rows=1500, nu=0.4, seed=0)
    A = problem.matrix
    print(f"problem: {problem.summary()}")
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.n_rows)

    part = partition(A, 16, seed=0)
    system = build_block_system(A, part, local_solver="direct")

    plain = conjugate_gradient(A, b, tol=1e-8, max_iter=5000)
    print(f"\n{'preconditioner':32s} {'iterations':>10s} {'converged':>9s}")
    print(f"{'(none)':32s} {plain.iterations:10d} {plain.converged!s:>9s}")

    configs = (
        ("Block Jacobi, 2 steps", BlockJacobi, 2),
        ("Parallel Southwell, 8 steps", ParallelSouthwell, 8),
        ("Distributed Southwell, 8 steps", DistributedSouthwell, 8),
    )
    for name, cls, steps in configs:
        precond = block_method_preconditioner(lambda c=cls: c(system),
                                              n_steps=steps)
        res = conjugate_gradient(A, b, tol=1e-8, max_iter=5000,
                                 preconditioner=precond)
        print(f"{name:32s} {res.iterations:10d} {res.converged!s:>9s}")
        assert res.converged
        assert res.iterations < plain.iterations

    print("\nall three preconditioners cut the iteration count sharply; "
          "the Southwell\nvariants match or beat Block Jacobi at the same "
          "relaxation budget while\ncommunicating far less per application "
          "(see the Table 4 bench).")


if __name__ == "__main__":
    main()
